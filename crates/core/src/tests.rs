use crate::sync::{RouteUpdate, SharedFib};
use crate::{Applied, Builder, Fib, Poptrie, PoptrieBasic, PoptrieConfig};
#[cfg(feature = "proptest")] // the oracle is only used by the gated proptests
use poptrie_rib::LinearLpm;
use poptrie_rib::{Lpm, Prefix, RadixTree};
use poptrie_rng::prelude::*;

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

/// The config most tests want: direct-pointing size `s`, no aggregation
/// (so incremental patches can be compared against full rebuilds).
fn cfg(s: u8) -> PoptrieConfig {
    PoptrieConfig::new()
        .direct_bits(s)
        .aggregate(false)
        .build()
        .unwrap()
}

/// A random BGP-shaped table over `u32` keys.
fn random_v4_table(rng: &mut StdRng, n: usize) -> RadixTree<u32, u16> {
    let mut t = RadixTree::new();
    while t.len() < n {
        let len = *[8u8, 12, 16, 18, 20, 22, 24, 24, 24, 28, 32]
            .choose(rng)
            .unwrap();
        let addr: u32 = rng.gen();
        let nh = rng.gen_range(1..=64u16);
        t.insert(Prefix::new(addr, len), nh);
    }
    t
}

/// A random table over the exhaustive-checkable `u16` key space.
fn random_v16_table(rng: &mut StdRng, n: usize) -> RadixTree<u16, u16> {
    let mut t = RadixTree::new();
    for _ in 0..n {
        let len = rng.gen_range(0..=16u8);
        let addr: u16 = rng.gen();
        t.insert(Prefix::new(addr, len), rng.gen_range(1..=8u16));
    }
    t
}

mod build {
    use super::*;

    #[test]
    fn empty_table_lookups_none() {
        let rib: RadixTree<u32, u16> = RadixTree::new();
        for s in [0u8, 8, 16, 18] {
            let t: Poptrie = Builder::new().direct_bits(s).build(&rib);
            assert_eq!(t.lookup(0), None, "s={s}");
            assert_eq!(t.lookup(u32::MAX), None, "s={s}");
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn single_default_route() {
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        rib.insert(p4("0.0.0.0/0"), 5);
        for s in [0u8, 16, 18] {
            let t: Poptrie = Builder::new().direct_bits(s).build(&rib);
            assert_eq!(t.lookup(0), Some(5));
            assert_eq!(t.lookup(0xDEAD_BEEF), Some(5));
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn basic_example_all_s() {
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        rib.insert(p4("10.0.0.0/8"), 1);
        rib.insert(p4("10.64.0.0/16"), 2);
        rib.insert(p4("192.0.2.0/24"), 3);
        rib.insert(p4("192.0.2.128/25"), 4);
        rib.insert(p4("203.0.113.7/32"), 5);
        for s in [0u8, 6, 12, 16, 18, 20] {
            let t: Poptrie = Builder::new().direct_bits(s).build(&rib);
            assert_eq!(t.lookup(0x0A00_0001), Some(1), "s={s}");
            assert_eq!(t.lookup(0x0A40_0001), Some(2), "s={s}");
            assert_eq!(t.lookup(0x0A41_0001), Some(1), "s={s}");
            assert_eq!(t.lookup(0xC000_0201), Some(3), "s={s}");
            assert_eq!(t.lookup(0xC000_02FF), Some(4), "s={s}");
            assert_eq!(t.lookup(0xCB00_7107), Some(5), "s={s}");
            assert_eq!(t.lookup(0xCB00_7108), None, "s={s}");
            assert_eq!(t.lookup(0x0B00_0001), None, "s={s}");
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn host_route_at_max_depth() {
        // /31 and /32 prefixes live past the last full 6-bit chunk when
        // s = 18 (offsets 18, 24, 30): exercises the zero-padded extract.
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        rib.insert(p4("198.51.100.42/32"), 9);
        rib.insert(p4("198.51.100.40/31"), 8);
        for s in [0u8, 16, 18] {
            let t: Poptrie = Builder::new().direct_bits(s).build(&rib);
            assert_eq!(t.lookup(0xC633_642A), Some(9), "s={s}");
            assert_eq!(t.lookup(0xC633_6428), Some(8), "s={s}");
            assert_eq!(t.lookup(0xC633_6429), Some(8), "s={s}");
            assert_eq!(t.lookup(0xC633_642B), None, "s={s}");
        }
    }

    #[test]
    fn exhaustive_u16_against_radix() {
        let mut rng = StdRng::seed_from_u64(1);
        for round in 0..30 {
            let rib = random_v16_table(&mut rng, 50);
            for s in [0u8, 4, 7, 12] {
                let agg = round % 2 == 0;
                let t: Poptrie<u16> = Builder::new().direct_bits(s).aggregate(agg).build(&rib);
                t.check_invariants().unwrap();
                for key in 0..=u16::MAX {
                    assert_eq!(
                        t.lookup(key),
                        rib.lookup(key).copied(),
                        "round={round} s={s} agg={agg} key={key:#06x}"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_u16_basic_variant() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let rib = random_v16_table(&mut rng, 60);
            let t: PoptrieBasic<u16> = Builder::new().direct_bits(7).build(&rib);
            t.check_invariants().unwrap();
            for key in 0..=u16::MAX {
                assert_eq!(t.lookup(key), rib.lookup(key).copied());
            }
        }
    }

    #[test]
    fn random_u32_against_radix() {
        let mut rng = StdRng::seed_from_u64(3);
        let rib = random_v4_table(&mut rng, 5000);
        for s in [0u8, 16, 18] {
            let t: Poptrie = Builder::new().direct_bits(s).build(&rib);
            t.check_invariants().unwrap();
            // Probe pure-random keys plus neighborhoods of every prefix
            // (boundary addresses are where off-by-one bugs live).
            for _ in 0..20_000 {
                let key: u32 = rng.gen();
                assert_eq!(t.lookup(key), rib.lookup(key).copied(), "s={s}");
            }
            for (p, _) in rib.iter() {
                for delta in [0u32, 1, 0xFF] {
                    let key = p.addr().wrapping_add(delta);
                    assert_eq!(t.lookup(key), rib.lookup(key).copied(), "s={s}");
                    let below = p.addr().wrapping_sub(1);
                    assert_eq!(t.lookup(below), rib.lookup(below).copied(), "s={s}");
                }
            }
        }
    }

    #[test]
    fn ipv6_basic() {
        let mut rib: RadixTree<u128, u16> = RadixTree::new();
        rib.insert("2001:db8::/32".parse().unwrap(), 1);
        rib.insert("2001:db8:0:1::/64".parse().unwrap(), 2);
        rib.insert("::/0".parse().unwrap(), 3);
        rib.insert("2001:db8::42/128".parse().unwrap(), 4);
        for s in [0u8, 16, 18] {
            let t: Poptrie<u128> = Builder::new().direct_bits(s).build(&rib);
            t.check_invariants().unwrap();
            let k64 = 0x2001_0db8_0000_0001_dead_beef_0000_0001u128;
            let k32 = 0x2001_0db8_ffff_0000_0000_0000_0000_0001u128;
            let khost = 0x2001_0db8_0000_0000_0000_0000_0000_0042u128;
            assert_eq!(t.lookup(k64), Some(2), "s={s}");
            assert_eq!(t.lookup(k32), Some(1), "s={s}");
            assert_eq!(t.lookup(khost), Some(4), "s={s}");
            assert_eq!(t.lookup(1u128), Some(3), "s={s}");
        }
    }

    #[test]
    fn names_follow_paper_convention() {
        let rib: RadixTree<u32, u16> = RadixTree::new();
        let t: Poptrie = Builder::new().direct_bits(18).build(&rib);
        assert_eq!(Lpm::<u32>::name(&t), "Poptrie18");
        let t: Poptrie = Builder::new().direct_bits(0).build(&rib);
        assert_eq!(Lpm::<u32>::name(&t), "Poptrie0");
        let t: PoptrieBasic = Builder::new().direct_bits(16).build(&rib);
        assert_eq!(Lpm::<u32>::name(&t), "PoptrieBasic16");
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn oversized_direct_bits_panics() {
        let _ = Builder::<u32, crate::Node24>::new().direct_bits(25);
    }
}

mod compression {
    use super::*;

    #[test]
    fn leafvec_compresses_leaves_dramatically() {
        // §4.3: "reduces more than 90% of leaves". A shorter prefix
        // expanded across a 64-slot node is exactly the redundancy leafvec
        // removes; on a BGP-shaped table the reduction is large.
        let mut rng = StdRng::seed_from_u64(4);
        let rib = random_v4_table(&mut rng, 20_000);
        let basic: PoptrieBasic = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        let leafvec: Poptrie = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        let (b, l) = (basic.stats(), leafvec.stats());
        assert_eq!(b.inodes, l.inodes, "leafvec must not change the tree shape");
        assert!(
            (l.leaves as f64) < (b.leaves as f64) * 0.10,
            "expected >90% leaf reduction, got {} -> {}",
            b.leaves,
            l.leaves
        );
    }

    #[test]
    fn aggregation_reduces_size() {
        // Many prefixes share few next hops => aggregation merges heavily.
        let mut rng = StdRng::seed_from_u64(5);
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        // Dense blocks: each /20 is fully populated by its 16 /24s, most
        // sharing one next hop — the "subtree without any gap" that §3's
        // aggregation merges.
        for _ in 0..1000 {
            let block = Prefix::new(rng.gen(), 20);
            let nh = rng.gen_range(1..=4u16);
            for sub in block.split(4) {
                rib.insert(sub, nh);
            }
        }
        let plain: Poptrie = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        let agg: Poptrie = Builder::new().direct_bits(16).aggregate(true).build(&rib);
        assert!(agg.stats().memory_bytes < plain.stats().memory_bytes);
        let mut rng2 = StdRng::seed_from_u64(6);
        for _ in 0..20_000 {
            let key: u32 = rng2.gen();
            assert_eq!(plain.lookup(key), agg.lookup(key));
        }
    }

    #[test]
    fn stats_memory_accounting() {
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        rib.insert(p4("10.0.0.0/8"), 1);
        let t: Poptrie = Builder::new().direct_bits(16).build(&rib);
        let st = t.stats();
        assert_eq!(st.direct_slots, 1 << 16);
        assert_eq!(
            st.memory_bytes,
            st.inodes * 24 + st.leaves * 2 + st.direct_slots * 4
        );
        let tb: PoptrieBasic = Builder::new().direct_bits(16).build(&rib);
        let stb = tb.stats();
        assert_eq!(
            stb.memory_bytes,
            stb.inodes * 16 + stb.leaves * 2 + stb.direct_slots * 4
        );
    }

    #[test]
    fn direct_pointing_resolves_short_prefixes_without_nodes() {
        // With s = 18 a pure-/16 table needs no internal nodes at all.
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        for i in 0..100u32 {
            rib.insert(Prefix::new(i << 16, 16), (i % 13 + 1) as u16);
        }
        let t: Poptrie = Builder::new().direct_bits(18).build(&rib);
        assert_eq!(t.stats().inodes, 0);
        assert_eq!(t.lookup(50 << 16 | 0x1234), Some(50 % 13 + 1));
    }
}

mod ranges {
    use super::*;

    /// Ground truth: scan every key (u16 space) and record value-change
    /// boundaries.
    fn naive_ranges(rib: &RadixTree<u16, u16>) -> Vec<(u16, u16)> {
        let mut out: Vec<(u16, u16)> = Vec::new();
        for key in 0..=u16::MAX {
            let nh = rib.lookup(key).copied().unwrap_or(0);
            match out.last() {
                Some(&(_, last)) if last == nh => {}
                _ => out.push((key, nh)),
            }
        }
        out
    }

    #[test]
    fn ranges_match_exhaustive_scan_u16() {
        let mut rng = StdRng::seed_from_u64(31);
        for round in 0..20 {
            let rib = random_v16_table(&mut rng, 40);
            for s in [0u8, 7, 12] {
                let t: Poptrie<u16> = Builder::new()
                    .direct_bits(s)
                    .aggregate(round % 2 == 0)
                    .build(&rib);
                assert_eq!(t.ranges(), naive_ranges(&rib), "round={round} s={s}");
            }
        }
    }

    #[test]
    fn ranges_of_empty_and_default() {
        let rib: RadixTree<u32, u16> = RadixTree::new();
        let t: Poptrie<u32> = Builder::new().direct_bits(16).build(&rib);
        assert_eq!(t.ranges(), vec![(0u32, 0u16)]);
        let rib = RadixTree::from_routes(vec![(p4("0.0.0.0/0"), 9u16)]);
        let t: Poptrie<u32> = Builder::new().direct_bits(16).build(&rib);
        assert_eq!(t.ranges(), vec![(0u32, 9u16)]);
    }

    #[test]
    fn ranges_are_semantic_equality() {
        // Two FIBs with different options but the same routes must have
        // identical range lists — the documented diffing use case.
        let mut rng = StdRng::seed_from_u64(32);
        let rib = random_v4_table(&mut rng, 2000);
        let a: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        let b: Poptrie<u32> = Builder::new().direct_bits(18).aggregate(true).build(&rib);
        assert_eq!(a.ranges(), b.ranges());
        // And each range start actually looks up to its next hop.
        for &(start, nh) in a.ranges().iter().take(500) {
            assert_eq!(a.lookup_raw(start), nh);
            if start > 0 {
                assert_ne!(a.lookup_raw(start - 1), nh, "unmerged boundary");
            }
        }
    }

    #[test]
    fn ranges_handle_host_route_at_end_of_space() {
        let rib = RadixTree::from_routes(vec![
            (p4("255.255.255.255/32"), 3u16),
            (p4("0.0.0.0/32"), 4),
        ]);
        let t: Poptrie<u32> = Builder::new().direct_bits(18).build(&rib);
        assert_eq!(t.ranges(), vec![(0u32, 4u16), (1, 0), (u32::MAX, 3)]);
    }
}

mod update {
    use super::*;

    /// After a batch of updates, an incrementally patched FIB must agree
    /// with a from-scratch compilation everywhere.
    fn assert_matches_rebuild(fib: &Fib<u16>) {
        let fresh: Poptrie<u16> = Builder::new()
            .direct_bits(fib.poptrie().direct_bits())
            .aggregate(false)
            .build(fib.rib());
        for key in 0..=u16::MAX {
            assert_eq!(fib.lookup(key), fresh.lookup(key), "key={key:#06x}");
        }
        fib.poptrie().check_invariants().unwrap();
    }

    #[test]
    fn insert_then_lookup() {
        let mut fib: Fib<u32> = Fib::with_config(cfg(18));
        assert_eq!(fib.lookup(0x0A00_0001), None);
        assert_eq!(fib.insert(p4("10.0.0.0/8"), 1), Ok(Applied::Inserted));
        assert_eq!(fib.lookup(0x0A00_0001), Some(1));
        assert_eq!(fib.insert(p4("10.0.0.0/24"), 2), Ok(Applied::Inserted));
        assert_eq!(fib.lookup(0x0A00_0001), Some(2));
        assert_eq!(fib.lookup(0x0A00_0101), Some(1));
        assert_eq!(fib.remove(p4("10.0.0.0/24")), Ok(Applied::Withdrawn(2)));
        assert_eq!(fib.lookup(0x0A00_0001), Some(1));
        fib.poptrie().check_invariants().unwrap();
    }

    #[test]
    fn short_prefix_update_touches_direct_range() {
        let mut fib: Fib<u32> = Fib::with_config(cfg(18));
        fib.insert(p4("10.0.0.0/8"), 1).unwrap(); // 2^10 direct slots
        assert_eq!(fib.lookup(0x0A12_3456), Some(1));
        assert!(fib.stats().direct_replacements >= 1 << 10);
        fib.remove(p4("10.0.0.0/8")).unwrap();
        assert_eq!(fib.lookup(0x0A12_3456), None);
    }

    #[test]
    fn zero_next_hop_rejected() {
        let mut fib: Fib<u32> = Fib::with_config(cfg(16));
        assert_eq!(
            fib.insert(p4("10.0.0.0/8"), 0),
            Err(crate::UpdateError::ReservedNextHop)
        );
        // The rejection left no trace.
        assert_eq!(fib.lookup(0x0A00_0001), None);
        assert_eq!(fib.stats().updates, 0);
    }

    #[test]
    fn random_churn_matches_rebuild_u16() {
        let mut rng = StdRng::seed_from_u64(7);
        for s in [0u8, 7, 12] {
            let mut fib: Fib<u16> = Fib::with_config(cfg(s));
            let mut live: Vec<Prefix<u16>> = Vec::new();
            for step in 0..300 {
                if live.is_empty() || rng.gen_bool(0.6) {
                    let p = Prefix::new(rng.gen::<u16>(), rng.gen_range(0..=16));
                    fib.insert(p, rng.gen_range(1..=9)).unwrap();
                    if !live.contains(&p) {
                        live.push(p);
                    }
                } else {
                    let p = live.swap_remove(rng.gen_range(0..live.len()));
                    assert!(fib.remove(p).unwrap().changed());
                }
                if step % 60 == 59 {
                    assert_matches_rebuild(&fib);
                }
            }
            assert_matches_rebuild(&fib);
        }
    }

    #[test]
    fn update_stats_accumulate() {
        let mut fib: Fib<u32> = Fib::with_config(cfg(16));
        fib.insert(p4("10.0.0.0/24"), 1).unwrap();
        fib.insert(p4("10.0.0.128/25"), 2).unwrap();
        let st = fib.stats();
        assert_eq!(st.updates, 2);
        assert!(st.nodes_allocated > 0);
        // The first insert converts the direct slot from a leaf to a node;
        // the second lands inside the same slot's subtree, which the §3.5
        // node-refresh repairs without touching the top-level array.
        assert_eq!(st.direct_replacements, 1);
        fib.remove(p4("10.0.0.0/24")).unwrap();
        assert!(fib.stats().leaves_freed > 0, "{:?}", fib.stats());
        // Withdrawing the last route in the slot tears the subtree down.
        fib.remove(p4("10.0.0.128/25")).unwrap();
        assert!(fib.stats().nodes_freed > 0, "{:?}", fib.stats());
        assert_eq!(fib.poptrie().stats().inodes, 0);
    }

    #[test]
    fn buddy_accounting_stays_tight_under_churn() {
        // Allocator slack must not grow without bound across heavy churn —
        // the reason the paper uses a buddy allocator for update-heavy
        // FIBs.
        let mut rng = StdRng::seed_from_u64(8);
        let mut fib: Fib<u32> = Fib::with_config(cfg(16));
        let mut live: Vec<Prefix<u32>> = Vec::new();
        for _ in 0..3000 {
            if live.len() < 400 && rng.gen_bool(0.55) {
                let p = Prefix::new(rng.gen(), *[20u8, 24, 28, 32].choose(&mut rng).unwrap());
                fib.insert(p, rng.gen_range(1..=32)).unwrap();
                live.push(p);
            } else if !live.is_empty() {
                let p = live.swap_remove(rng.gen_range(0..live.len()));
                fib.remove(p).unwrap();
            }
        }
        fib.poptrie().check_invariants().unwrap();
        for p in live.drain(..) {
            fib.remove(p).unwrap();
        }
        let st = fib.poptrie().stats();
        assert_eq!(st.inodes, 0, "all nodes must be freed");
        fib.poptrie().check_invariants().unwrap();
    }

    #[test]
    fn update_strategies_are_equivalent_and_refresh_is_cheaper() {
        use crate::update::UpdateStrategy;
        let mut rng = StdRng::seed_from_u64(21);
        let mut refresh: Fib<u16> = Fib::with_config(cfg(7));
        let mut rebuild: Fib<u16> = Fib::with_config(cfg(7));
        rebuild.set_update_strategy(UpdateStrategy::SubtreeRebuild);
        assert_eq!(rebuild.update_strategy(), UpdateStrategy::SubtreeRebuild);
        let mut live: Vec<Prefix<u16>> = Vec::new();
        for _ in 0..400 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let p = Prefix::new(rng.gen::<u16>(), rng.gen_range(0..=16));
                let nh = rng.gen_range(1..=9);
                refresh.insert(p, nh).unwrap();
                rebuild.insert(p, nh).unwrap();
                if !live.contains(&p) {
                    live.push(p);
                }
            } else {
                let p = live.swap_remove(rng.gen_range(0..live.len()));
                refresh.remove(p).unwrap();
                rebuild.remove(p).unwrap();
            }
        }
        for key in 0..=u16::MAX {
            assert_eq!(refresh.lookup(key), rebuild.lookup(key), "key={key:#06x}");
        }
        refresh.poptrie().check_invariants().unwrap();
        rebuild.poptrie().check_invariants().unwrap();
        // The §3.5 node-reuse strategy must rebuild strictly fewer nodes.
        assert!(
            refresh.stats().nodes_allocated < rebuild.stats().nodes_allocated,
            "refresh {:?} vs rebuild {:?}",
            refresh.stats(),
            rebuild.stats()
        );
    }

    #[test]
    fn refresh_leaf_only_update_touches_no_nodes() {
        // A pure path change (same prefix, new next hop) in a populated
        // subtree must replace leaves only — the §4.9 common case.
        let mut fib: Fib<u32> = Fib::with_config(cfg(16));
        fib.insert(p4("10.0.0.0/24"), 1).unwrap();
        fib.insert(p4("10.0.1.0/24"), 2).unwrap();
        let before = fib.stats();
        // Path change: same prefix, new next hop.
        assert_eq!(fib.insert(p4("10.0.1.0/24"), 3), Ok(Applied::Replaced(2)));
        let after = fib.stats();
        assert_eq!(
            after.nodes_allocated, before.nodes_allocated,
            "no node churn"
        );
        assert_eq!(after.nodes_freed, before.nodes_freed);
        assert!(after.leaves_allocated > before.leaves_allocated);
        assert_eq!(fib.lookup(0x0A00_0101), Some(3));
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut fib: Fib<u32> = Fib::with_config(cfg(18));
        for _ in 0..2000 {
            let p = Prefix::new(rng.gen(), *[8u8, 16, 24, 32].choose(&mut rng).unwrap());
            fib.insert(p, rng.gen_range(1..=16)).unwrap();
        }
        let incremental = fib.poptrie().clone();
        fib.rebuild();
        for _ in 0..50_000 {
            let key: u32 = rng.gen();
            assert_eq!(incremental.lookup(key), fib.lookup(key));
        }
    }

    #[test]
    fn from_rib_initial_state() {
        let mut rng = StdRng::seed_from_u64(10);
        let rib = random_v4_table(&mut rng, 1000);
        let fib = Fib::compile(
            rib.clone(),
            PoptrieConfig::new().direct_bits(16).build().unwrap(),
        );
        for _ in 0..10_000 {
            let key: u32 = rng.gen();
            assert_eq!(fib.lookup(key), rib.lookup(key).copied());
        }
    }
}

mod edge_cases {
    use super::*;

    #[test]
    fn u64_keys_work() {
        let p = |addr: u64, len: u8| Prefix::new(addr, len);
        let mut rib: RadixTree<u64, u16> = RadixTree::new();
        rib.insert(p(0xAAAA_0000_0000_0000, 16), 1);
        rib.insert(p(0xAAAA_BBBB_0000_0000, 32), 2);
        rib.insert(p(0xAAAA_BBBB_CCCC_DDDD, 64), 3);
        for s in [0u8, 12, 18] {
            let t: Poptrie<u64> = Builder::new().direct_bits(s).build(&rib);
            t.check_invariants().unwrap();
            assert_eq!(t.lookup(0xAAAA_BBBB_CCCC_DDDD), Some(3), "s={s}");
            assert_eq!(t.lookup(0xAAAA_BBBB_CCCC_DDDE), Some(2), "s={s}");
            assert_eq!(t.lookup(0xAAAA_0001_0000_0000), Some(1), "s={s}");
            assert_eq!(t.lookup(0xAAAB_0000_0000_0000), None, "s={s}");
        }
    }

    #[test]
    fn max_next_hop_fits_direct_leaf_and_trie_leaf() {
        // 0xFFFF must round-trip through both the 31-bit direct-leaf
        // encoding and the u16 leaf array.
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        rib.insert(p4("10.0.0.0/8"), u16::MAX); // resolved by direct leaf
        rib.insert(p4("20.0.0.0/24"), u16::MAX); // resolved via trie leaf
        let t: Poptrie<u32> = Builder::new().direct_bits(18).build(&rib);
        assert_eq!(t.lookup(0x0A01_0203), Some(u16::MAX));
        assert_eq!(t.lookup(0x1400_0001), Some(u16::MAX));
    }

    #[test]
    fn all_64_children_internal() {
        // Force a node whose vector is all ones: 64 sub-chunks each with
        // deeper prefixes. With s = 0 the root chunk covers bits 0..6, so
        // give every 6-bit top value a /12 and a /18 below it.
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        for v in 0..64u32 {
            rib.insert(Prefix::new(v << 26, 12), (v % 9 + 1) as u16);
            rib.insert(Prefix::new(v << 26 | 1 << 15, 18), (v % 5 + 1) as u16);
        }
        let t: Poptrie<u32> = Builder::new().direct_bits(0).aggregate(false).build(&rib);
        t.check_invariants().unwrap();
        for v in 0..64u32 {
            assert_eq!(t.lookup(v << 26 | 0xFF), Some((v % 9 + 1) as u16));
            assert_eq!(t.lookup(v << 26 | 1 << 15), Some((v % 5 + 1) as u16));
        }
    }

    #[test]
    fn deep_nested_chain_every_length() {
        // Prefixes at every length 1..=32 along one path: maximal trie
        // depth, every chunk boundary crossed.
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        let spine = 0xA5A5_A5A5u32;
        for len in 1..=32u8 {
            rib.insert(Prefix::new(spine, len), len as u16);
        }
        for s in [0u8, 16, 18] {
            let t: Poptrie<u32> = Builder::new().direct_bits(s).aggregate(false).build(&rib);
            assert_eq!(t.lookup(spine), Some(32), "s={s}");
            // Flip the last bit: matches the /31.
            assert_eq!(t.lookup(spine ^ 1), Some(31), "s={s}");
            // Flip bit 8 (0-indexed from MSB): matches the /8.
            assert_eq!(t.lookup(spine ^ (1 << 23)), Some(8), "s={s}");
            for key in [spine, spine ^ 1, spine ^ 0xFF, !spine] {
                assert_eq!(t.lookup(key), rib.lookup(key).copied(), "s={s}");
            }
        }
    }

    #[test]
    fn exhaustive_u8_keyspace_all_tables() {
        // Every possible route set over 3 fixed prefixes of an 8-bit key
        // space, exhaustively — a tiny model-checking pass.
        let prefixes = [
            Prefix::<u8>::new(0b1010_0000, 3),
            Prefix::<u8>::new(0b1010_1000, 5),
            Prefix::<u8>::new(0, 0),
        ];
        for mask in 0u32..(1 << 3) {
            let mut rib: RadixTree<u8, u16> = RadixTree::new();
            for (i, &p) in prefixes.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    rib.insert(p, (i + 1) as u16);
                }
            }
            for s in [0u8, 3, 7] {
                let t: Poptrie<u8> = Builder::new().direct_bits(s).build(&rib);
                for key in 0..=255u8 {
                    assert_eq!(
                        t.lookup(key),
                        rib.lookup(key).copied(),
                        "mask={mask:03b} s={s} key={key:#04x}"
                    );
                }
            }
        }
    }
}

mod serialization {
    use super::*;
    use crate::SerializeError;

    #[test]
    fn roundtrip_preserves_semantics() {
        let mut rng = StdRng::seed_from_u64(61);
        let rib = random_v4_table(&mut rng, 5000);
        for s in [0u8, 16, 18] {
            let fib: Poptrie<u32> = Builder::new().direct_bits(s).build(&rib);
            let bytes = fib.to_bytes();
            let loaded: Poptrie<u32> = Poptrie::from_bytes(&bytes).unwrap();
            loaded.check_invariants().unwrap();
            assert_eq!(loaded.stats(), fib.stats(), "s={s}");
            assert_eq!(loaded.ranges(), fib.ranges(), "s={s}");
        }
    }

    #[test]
    fn roundtrip_basic_and_v6() {
        let mut rng = StdRng::seed_from_u64(62);
        let rib = random_v4_table(&mut rng, 1000);
        let fib: PoptrieBasic<u32> = Builder::new().direct_bits(16).build(&rib);
        let loaded: PoptrieBasic<u32> = PoptrieBasic::from_bytes(&fib.to_bytes()).unwrap();
        assert_eq!(loaded.ranges(), fib.ranges());

        let mut rib6: RadixTree<u128, u16> = RadixTree::new();
        rib6.insert("2001:db8::/32".parse().unwrap(), 1);
        rib6.insert("2001:db8:1::/48".parse().unwrap(), 2);
        let fib6: Poptrie<u128> = Builder::new().direct_bits(18).build(&rib6);
        let loaded6: Poptrie<u128> = Poptrie::from_bytes(&fib6.to_bytes()).unwrap();
        assert_eq!(
            loaded6.lookup(0x2001_0db8_0001_0000_0000_0000_0000_0001),
            Some(2)
        );
    }

    #[test]
    fn wrong_shape_is_rejected() {
        let rib: RadixTree<u32, u16> = RadixTree::new();
        let fib: Poptrie<u32> = Builder::new().build(&rib);
        let bytes = fib.to_bytes();
        // Wrong key width.
        let err = Poptrie::<u128>::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SerializeError::WrongShape { .. }), "{err}");
        // Wrong node layout.
        let err = PoptrieBasic::<u32>::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SerializeError::WrongShape { .. }), "{err}");
    }

    #[test]
    fn corruption_is_detected() {
        let mut rng = StdRng::seed_from_u64(63);
        let rib = random_v4_table(&mut rng, 200);
        let fib: Poptrie<u32> = Builder::new().direct_bits(16).build(&rib);
        let good = fib.to_bytes();
        // Flip a payload byte: checksum must catch it.
        let mut bad = good.clone();
        let idx = bad.len() - 3;
        bad[idx] ^= 0xFF;
        assert_eq!(
            Poptrie::<u32>::from_bytes(&bad).unwrap_err(),
            SerializeError::ChecksumMismatch
        );
        // Truncated payload: caught by the checksum (computed over what
        // remains).
        assert_eq!(
            Poptrie::<u32>::from_bytes(&good[..good.len() - 5]).unwrap_err(),
            SerializeError::ChecksumMismatch
        );
        // Truncated header.
        assert_eq!(
            Poptrie::<u32>::from_bytes(&good[..10]).unwrap_err(),
            SerializeError::Truncated
        );
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Poptrie::<u32>::from_bytes(&bad).unwrap_err(),
            SerializeError::BadHeader(_)
        ));
        // Empty input.
        assert_eq!(
            Poptrie::<u32>::from_bytes(&[]).unwrap_err(),
            SerializeError::Truncated
        );
    }
}

mod rcu {
    use crate::sync::RcuCell;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn read_returns_current_value() {
        let cell = RcuCell::new(41);
        assert_eq!(cell.read(|v| *v), 41);
        cell.replace(42);
        assert_eq!(cell.read(|v| *v), 42);
    }

    #[test]
    fn drop_reclaims_value() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = RcuCell::new(Counted(Arc::clone(&drops)));
            cell.replace(Counted(Arc::clone(&drops)));
            // With no outstanding snapshots, a replaced value is freed at
            // the swap itself.
            assert_eq!(drops.load(Ordering::SeqCst), 1, "replaced value freed");
            cell.replace(Counted(Arc::clone(&drops)));
            // A held snapshot keeps the value alive across a replace...
            let snap = cell.snapshot();
            cell.replace(Counted(Arc::clone(&drops)));
            assert_eq!(drops.load(Ordering::SeqCst), 2, "snapshot pins value");
            // ...until it drops.
            drop(snap);
            assert_eq!(drops.load(Ordering::SeqCst), 3, "freed with snapshot");
        }
        assert_eq!(drops.load(Ordering::SeqCst), 4, "all four values dropped");
    }

    #[test]
    fn parked_reader_keeps_exactly_one_old_snapshot_alive() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(Counted(Arc::clone(&drops)));
        assert_eq!(cell.snapshot_count(), 0, "fresh cell has no snapshots");

        // A reader parks on a snapshot of the initial value.
        let parked = cell.snapshot();
        assert_eq!(cell.snapshot_count(), 1);

        // Writers publish twice. The parked reader pins exactly its own
        // generation: the first value stays alive, the intermediate one
        // (never snapshotted) is freed at the swap that superseded it.
        cell.replace(Counted(Arc::clone(&drops)));
        cell.replace(Counted(Arc::clone(&drops)));
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "only the un-snapshotted intermediate value was freed"
        );
        // Superseded snapshots are no longer counted by the cell...
        assert_eq!(cell.snapshot_count(), 0);
        // ...but the parked reader still holds the sole reference to its
        // generation (the cell released its own at the first replace).
        assert_eq!(Arc::strong_count(&parked), 1);

        drop(parked);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "dropping the parked snapshot frees its generation"
        );
    }

    #[test]
    fn concurrent_read_replace_torture() {
        let cell = Arc::new(RcuCell::new(vec![0u64; 64]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // A torn/freed vector would fail this invariant.
                        cell.read(|v| {
                            assert_eq!(v.len(), 64);
                            let first = v[0];
                            assert!(v.iter().all(|&x| x == first));
                        });
                    }
                })
            })
            .collect();
        for i in 1..=2000u64 {
            cell.replace(vec![i; 64]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn build_agrees_with_linear_oracle(
            routes in proptest::collection::vec((any::<u16>(), 0u8..=16, 1u16..=20), 0..50),
            s in prop_oneof![Just(0u8), Just(4), Just(7), Just(12)],
            agg: bool,
            keys in proptest::collection::vec(any::<u16>(), 128),
        ) {
            let routes: Vec<(Prefix<u16>, u16)> = routes
                .into_iter()
                .map(|(a, l, n)| (Prefix::new(a, l), n))
                .collect();
            let rib: RadixTree<u16, u16> = RadixTree::from_routes(routes.clone());
            let lin = LinearLpm::new(rib.to_routes());
            let t: Poptrie<u16> = Builder::new().direct_bits(s).aggregate(agg).build(&rib);
            for key in keys {
                prop_assert_eq!(t.lookup(key), Lpm::lookup(&lin, key));
            }
        }

        #[test]
        fn serialization_roundtrips_arbitrary_tables(
            routes in proptest::collection::vec((any::<u16>(), 0u8..=16, 1u16..=20), 0..50),
            s in prop_oneof![Just(0u8), Just(7), Just(12)],
        ) {
            let routes: Vec<(Prefix<u16>, u16)> = routes
                .into_iter()
                .map(|(a, l, n)| (Prefix::new(a, l), n))
                .collect();
            let rib: RadixTree<u16, u16> = RadixTree::from_routes(routes);
            let fib: Poptrie<u16> = Builder::new().direct_bits(s).build(&rib);
            let loaded: Poptrie<u16> = Poptrie::from_bytes(&fib.to_bytes()).unwrap();
            prop_assert_eq!(loaded.ranges(), fib.ranges());
            prop_assert_eq!(loaded.stats(), fib.stats());
        }

        #[test]
        fn incremental_update_agrees_with_oracle(
            ops in proptest::collection::vec((any::<bool>(), any::<u16>(), 0u8..=16, 1u16..=9), 1..60),
            keys in proptest::collection::vec(any::<u16>(), 64),
        ) {
            let mut fib: Fib<u16> = Fib::with_config(cfg(7));
            let mut lin = LinearLpm::new(Vec::new());
            for (is_insert, addr, len, nh) in ops {
                let p = Prefix::new(addr, len);
                if is_insert {
                    fib.insert(p, nh).unwrap();
                    lin.insert(p, nh);
                } else {
                    fib.remove(p).unwrap();
                    lin.remove(p);
                }
            }
            for key in keys {
                prop_assert_eq!(fib.lookup(key), Lpm::lookup(&lin, key));
            }
            fib.poptrie().check_invariants().map_err(TestCaseError::fail)?;
        }
    }
}

mod shared {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn readers_progress_during_writes() {
        let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_config(cfg(16)));
        fib.insert(p4("10.0.0.0/8"), 1).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let fib = Arc::clone(&fib);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut count = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // 10.255.0.1 is covered only by the stable /8: the
                    // churned /24s all live in 10.0.0.0/16.
                    assert_eq!(fib.lookup(0x0AFF_0001), Some(1));
                    count += 1;
                }
                count
            }));
        }
        // Writer: churn more-specific routes under the stable /8.
        for i in 0..2000u32 {
            let p = Prefix::new(0x0A00_0000 | ((i % 64) << 10), 24);
            if i % 2 == 0 {
                fib.insert(p, ((i % 60) + 2) as u16).unwrap();
            } else {
                fib.remove(p).unwrap();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    }

    #[test]
    fn batch_update_is_atomic_at_publish() {
        let fib: SharedFib<u32> = SharedFib::with_config(cfg(16));
        let outcome = fib.update_batch(vec![
            RouteUpdate::Announce(p4("10.0.0.0/8"), 1),
            RouteUpdate::Announce(p4("10.1.0.0/16"), 2),
            RouteUpdate::Withdraw(p4("10.1.0.0/16")),
        ]);
        assert_eq!(fib.lookup(0x0A01_0001), Some(1));
        assert!(fib.stats().updates >= 3);
        assert_eq!(outcome.events, 3);
        assert_eq!(outcome.applied, 3);
        // One batch = one published snapshot version.
        assert_eq!(outcome.version, 1);
        assert_eq!(fib.version(), 1);
    }

    #[test]
    fn versions_advance_per_publish_not_per_event() {
        let fib: SharedFib<u32> = SharedFib::with_config(cfg(16));
        assert_eq!(fib.version(), 0);
        fib.insert(p4("10.0.0.0/8"), 1).unwrap();
        assert_eq!(fib.version(), 1);
        // An absent withdraw publishes nothing.
        assert_eq!(fib.remove(p4("192.0.2.0/24")), Ok(Applied::Absent));
        assert_eq!(fib.version(), 1);
        let outcome = fib.update_batch(vec![
            RouteUpdate::Announce(p4("10.0.0.0/8"), 1), // no-op re-announce
            RouteUpdate::Announce(p4("10.2.0.0/16"), 3),
        ]);
        assert_eq!((outcome.events, outcome.applied), (2, 1));
        assert_eq!(fib.version(), 2);
        assert_eq!(fib.snapshot().version(), 2);
    }

    #[test]
    fn with_current_reads_coherent_snapshot() {
        let fib: SharedFib<u32> = SharedFib::with_config(cfg(16));
        fib.insert(p4("10.0.0.0/8"), 1).unwrap();
        let (nh, stats) = fib.with_current(|t| (t.lookup(0x0A00_0001), t.stats()));
        assert_eq!(nh, Some(1));
        assert!(stats.memory_bytes > 0);
        // Ranges read through the same snapshot API.
        let ranges = fib.with_current(|t| t.ranges());
        assert!(ranges.iter().any(|&(_, nh)| nh == 1));
    }

    #[test]
    fn lookup_batch_uses_single_snapshot() {
        let fib: SharedFib<u32> = SharedFib::with_config(cfg(16));
        fib.insert(p4("10.0.0.0/8"), 1).unwrap();
        fib.insert(p4("11.0.0.0/8"), 2).unwrap();
        let keys = [0x0A00_0001u32, 0x0B00_0001, 0x0C00_0001];
        let mut out = Vec::new();
        fib.lookup_batch(&keys, &mut out);
        assert_eq!(out, vec![Some(1), Some(2), None]);
    }
}

mod audit {
    use super::*;
    use crate::trie::DIRECT_LEAF_BIT;

    #[test]
    fn audit_passes_after_build_and_churn() {
        let mut rng = StdRng::seed_from_u64(11);
        let rib = random_v4_table(&mut rng, 3_000);
        let t: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        let report = t.audit().expect("fresh build audits clean");
        assert_eq!(report.inodes, t.stats().inodes);
        assert_eq!(report.leaves, t.stats().leaves);
        assert!(report.node_blocks > 0 && report.leaf_blocks > 0);

        let mut fib = Fib::compile(rib, cfg(16));
        for i in 0..200u32 {
            let p = Prefix::new(rng.gen(), *[8, 16, 20, 24, 32].choose(&mut rng).unwrap());
            if i % 3 == 0 {
                fib.remove(p).unwrap();
            } else {
                fib.insert(p, rng.gen_range(1..=64)).unwrap();
            }
        }
        fib.poptrie().audit().expect("churned FIB audits clean");
    }

    #[test]
    fn audit_detects_count_drift() {
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        rib.insert(p4("10.0.0.0/24"), 1);
        let mut t: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        t.audit().unwrap();
        t.leaf_count += 1;
        let err = t.audit().unwrap_err();
        assert!(err.contains("leaf count mismatch"), "{err}");
    }

    #[test]
    fn audit_detects_freed_block_still_referenced() {
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        rib.insert(p4("10.0.0.0/24"), 1);
        let mut t: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        // Free the leaf block of the first reachable node behind the
        // structure's back: the trie still references it, so the auditor
        // must flag the dangling block (a lookup would still "work",
        // returning whatever the allocator later puts there).
        let e = *t
            .direct
            .iter()
            .find(|&&e| e & DIRECT_LEAF_BIT == 0)
            .expect("a slot with a subtree");
        let node = t.nodes[e as usize];
        let nleaves = node.leafvec.count_ones();
        assert!(nleaves > 0);
        t.leaf_buddy.free(node.base0, nleaves);
        t.leaf_count -= nleaves as usize; // keep counts consistent: only the block is stale
        let err = t.audit().unwrap_err();
        assert!(err.contains("not a live allocation"), "{err}");
    }

    #[test]
    fn audit_detects_vector_leafvec_overlap() {
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        // A /24 below s = 16 spans two 6-bit levels, so the slot's root
        // node has an internal child.
        rib.insert(p4("10.0.0.0/24"), 1);
        let mut t: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        let e = *t
            .direct
            .iter()
            .find(|&&e| e & DIRECT_LEAF_BIT == 0)
            .unwrap();
        let node = &mut t.nodes[e as usize];
        assert_ne!(node.vector, 0, "test premise: node has an internal child");
        let child_bit = node.vector & node.vector.wrapping_neg(); // lowest set bit
        node.leafvec |= child_bit;
        let err = t.audit().unwrap_err();
        assert!(err.contains("vector and leafvec share slots"), "{err}");
    }

    #[test]
    fn audit_detects_leaked_allocation() {
        let mut rib: RadixTree<u32, u16> = RadixTree::new();
        rib.insert(p4("10.0.0.0/24"), 1);
        let mut t: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
        // An allocation nothing references: the incremental updater lost
        // track of a block (leak). Reachability-only checks cannot see it.
        t.node_buddy.alloc(1);
        let err = t.audit().unwrap_err();
        assert!(err.contains("block leak"), "{err}");
    }
}

mod satellite_regressions {
    use super::*;
    use crate::sync::RcuCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::{Duration, Instant};

    /// `UpdateStats::updates` counts only inserts and removes that changed
    /// the RIB; a re-announcement of the current next hop takes no patch
    /// and must not be counted.
    #[test]
    fn noop_reannouncement_is_not_counted_or_patched() {
        let mut fib: Fib<u32> = Fib::with_config(cfg(16));
        fib.insert(p4("10.0.0.0/24"), 1).unwrap();
        let st = fib.stats();
        assert_eq!(st.updates, 1);
        // Same prefix, same next hop: the RIB is unchanged, so no update
        // is counted and no patch work happens.
        assert_eq!(fib.insert(p4("10.0.0.0/24"), 1), Ok(Applied::Unchanged(1)));
        assert_eq!(fib.stats(), st, "no-op announce must do zero work");
        // A genuine path change is counted.
        assert_eq!(fib.insert(p4("10.0.0.0/24"), 2), Ok(Applied::Replaced(1)));
        assert_eq!(fib.stats().updates, 2);
        // Withdrawing an absent prefix is also a no-op.
        assert_eq!(fib.remove(p4("192.0.2.0/24")), Ok(Applied::Absent));
        assert_eq!(fib.stats().updates, 2);
    }

    /// A value whose drop blocks until released, standing in for the
    /// multi-hundred-megabyte deallocation of a full BGP-table Poptrie.
    struct SlowDrop {
        id: u32,
        entered: Arc<AtomicBool>,
        release: Arc<AtomicBool>,
    }

    impl Drop for SlowDrop {
        fn drop(&mut self) {
            self.entered.store(true, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(30);
            while !self.release.load(Ordering::SeqCst) && Instant::now() < deadline {
                std::thread::yield_now();
            }
        }
    }

    /// `RcuCell::replace` must publish the new value and release the write
    /// lock *before* dropping the previous value: readers' snapshot
    /// acquisition may not stall behind a large deallocation.
    #[test]
    fn rcu_replace_drops_old_value_outside_the_lock() {
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let released = Arc::new(AtomicBool::new(true)); // successor drops freely
        let cell = Arc::new(RcuCell::new(SlowDrop {
            id: 1,
            entered: Arc::clone(&entered),
            release: Arc::clone(&release),
        }));
        let writer = {
            let cell = Arc::clone(&cell);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                // The cell holds the only reference, so replace() itself
                // runs the old value's (blocking) destructor.
                cell.replace(SlowDrop {
                    id: 2,
                    entered: Arc::new(AtomicBool::new(false)),
                    release: released,
                });
            })
        };
        // Wait until the old value's destructor is running inside replace().
        while !entered.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // A reader must now be able to take a snapshot immediately — and it
        // must already see the *new* value. Run it on a helper thread with a
        // timeout so a regression fails instead of deadlocking the suite.
        let (tx, rx) = mpsc::channel();
        let reader = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let id = cell.read(|v| v.id);
                let _ = tx.send(id);
            })
        };
        let seen = rx.recv_timeout(Duration::from_secs(5));
        release.store(true, Ordering::SeqCst); // unblock the drop either way
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(
            seen.expect("reader stalled behind the old value's drop"),
            2,
            "reader must observe the newly published value"
        );
    }

    /// Prefix construction canonicalizes (masks bits below `len`), and
    /// `Fib::patch` re-masks defensively — a sloppy host-address spelling
    /// of a short prefix must patch the prefix's real direct-slot range.
    #[test]
    fn non_canonical_addresses_are_canonicalized() {
        let sloppy = Prefix::<u32>::new(0x0A7F_FFFF, 8); // "10.127.255.255/8"
        assert_eq!(sloppy, p4("10.0.0.0/8"), "construction must mask");
        assert_eq!(sloppy.addr(), 0x0A00_0000);

        let mut fib: Fib<u32> = Fib::with_config(cfg(16));
        fib.insert(sloppy, 1).unwrap();
        // The whole /8 range resolves, including slots *before* the slot
        // of the unmasked address (a non-canonical patch would have
        // refreshed [0x0A7F.., 0x0B7F..) instead of [0x0A00.., 0x0B00..)).
        assert_eq!(fib.lookup(0x0A00_0000), Some(1));
        assert_eq!(fib.lookup(0x0A7F_FFFF), Some(1));
        assert_eq!(fib.lookup(0x0AFF_FFFF), Some(1));
        assert_eq!(fib.lookup(0x09FF_FFFF), None);
        assert_eq!(fib.lookup(0x0B00_0000), None);
        // Withdraw through a different non-canonical spelling.
        assert_eq!(
            fib.remove(Prefix::new(0x0A01_0203, 8)),
            Ok(Applied::Withdrawn(1))
        );
        assert_eq!(fib.lookup(0x0A00_0000), None);
        assert_eq!(fib.lookup(0x0AFF_FFFF), None);
        fib.poptrie().audit().unwrap();
    }
}

mod api {
    use super::*;
    use crate::{ConfigError, UpdateError};

    #[test]
    fn config_builder_validates_once() {
        let cfg = PoptrieConfig::new()
            .direct_bits(16)
            .strategy(crate::UpdateStrategy::SubtreeRebuild)
            .aggregate(false)
            .node_capacity(1 << 10)
            .leaf_capacity(1 << 12)
            .build()
            .unwrap();
        assert_eq!(cfg.direct_bits, 16);
        assert_eq!(cfg.strategy, crate::UpdateStrategy::SubtreeRebuild);
        assert!(!cfg.aggregate);
        assert_eq!((cfg.node_capacity, cfg.leaf_capacity), (1 << 10, 1 << 12));

        assert_eq!(
            PoptrieConfig::new().direct_bits(25).build(),
            Err(ConfigError::DirectBitsTooLarge(25))
        );
        assert_eq!(
            PoptrieConfig::new().node_capacity(1 << 31).build(),
            Err(ConfigError::CapacityTooLarge(1 << 31))
        );
        // Errors render as real std errors.
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::DirectBitsTooLarge(25));
        assert!(e.to_string().contains("25"));
    }

    #[test]
    fn config_respects_strategy_and_capacity() {
        let cfg = PoptrieConfig::new()
            .direct_bits(12)
            .strategy(crate::UpdateStrategy::SubtreeRebuild)
            .aggregate(false)
            .node_capacity(64)
            .leaf_capacity(64)
            .build()
            .unwrap();
        let mut fib: Fib<u32> = Fib::with_config(cfg);
        assert_eq!(fib.update_strategy(), crate::UpdateStrategy::SubtreeRebuild);
        fib.insert(p4("10.0.0.0/24"), 1).unwrap();
        assert_eq!(fib.lookup(0x0A00_0001), Some(1));
        fib.poptrie().check_invariants().unwrap();
    }

    /// A shared-leaves compile must agree with a private compile of the
    /// same RIB on every key, and its audit must pass with duplicate leaf
    /// extents tolerated. Uses a minimal interner (no deduplication GC
    /// sophistication — `poptrie-vrf`'s `NextHopIntern` owns that) to keep
    /// the core-level contract testable without the upper crate.
    #[test]
    fn shared_leaves_compile_matches_private() {
        use crate::shared_leaves::{EpochGuard, LeafInterner, LeafStoreHandle, SharedLeaves};
        use std::sync::{Arc, Mutex};

        /// Content-addressed interner over a fixed arena, refcounted,
        /// recycling extents immediately at refs=0 (safe single-threaded).
        #[derive(Debug)]
        struct TestIntern {
            arena: poptrie_buddy::ArenaHandle,
            store: Arc<SharedLeaves>,
            by_content: std::collections::HashMap<Vec<u16>, u32>,
            meta: std::collections::HashMap<u32, (u32, u64, Vec<u16>)>,
            epoch: u64,
        }

        impl LeafInterner for TestIntern {
            fn intern(&mut self, vals: &[u16]) -> Option<u32> {
                if let Some(&off) = self.by_content.get(vals) {
                    self.meta.get_mut(&off).unwrap().1 += 1;
                    return Some(off);
                }
                let off = self.arena.try_alloc(vals.len() as u32)?;
                self.store.write_block(off, vals);
                self.by_content.insert(vals.to_vec(), off);
                self.meta.insert(off, (vals.len() as u32, 1, vals.to_vec()));
                Some(off)
            }
            fn release(&mut self, off: u32, len: u32) {
                let (l, refs, key) = self.meta.get_mut(&off).expect("release of unknown extent");
                assert_eq!(*l, len);
                *refs -= 1;
                if *refs == 0 {
                    let key = key.clone();
                    self.by_content.remove(&key);
                    self.meta.remove(&off);
                    self.arena.free(off, len);
                }
            }
            fn is_live_block(&self, off: u32, len: u32) -> bool {
                self.meta.get(&off).is_some_and(|m| m.0 == len)
            }
            fn begin_epoch(&mut self) -> Arc<EpochGuard> {
                self.epoch += 1;
                EpochGuard::new(self.epoch)
            }
            fn total_refs(&self) -> u64 {
                self.meta.values().map(|m| m.1).sum()
            }
        }

        let store = SharedLeaves::new(1 << 16);
        let owner = poptrie_buddy::ArenaOwner::fixed(1 << 16);
        let intern: Arc<Mutex<dyn LeafInterner>> = Arc::new(Mutex::new(TestIntern {
            arena: owner.handle(),
            store: Arc::clone(&store),
            by_content: Default::default(),
            meta: Default::default(),
            epoch: 0,
        }));
        let handle = LeafStoreHandle::new(store, intern);

        let mut rng = StdRng::seed_from_u64(40);
        let rib = random_v4_table(&mut rng, 300);
        let cfg = PoptrieConfig::new().direct_bits(16).build().unwrap();

        // Two tenants off the same arena: the original RIB and a churned
        // variant; plus a private compile as the semantic oracle.
        let mut shared_a = Fib::compile_shared(rib.clone(), cfg, handle.clone());
        let shared_b = Fib::compile_shared(rib.clone(), cfg, handle.clone());
        let oracle = Fib::compile(rib, cfg);

        for _ in 0..5_000 {
            let key: u32 = rng.gen();
            assert_eq!(shared_a.lookup(key), oracle.lookup(key));
            assert_eq!(shared_b.lookup(key), oracle.lookup(key));
        }
        let ra = shared_a.poptrie().audit().unwrap();
        let rb = shared_b.poptrie().audit().unwrap();
        assert_eq!(
            (ra.leaf_block_refs + rb.leaf_block_refs) as u64,
            handle.total_refs(),
            "per-table leaf references must reconcile with the interner"
        );

        // Churn one tenant; the other's lookups and audit stay intact.
        shared_a.insert(p4("10.0.0.0/8"), 9).unwrap();
        shared_a.remove(p4("10.0.0.0/8")).unwrap();
        shared_a.poptrie().audit().unwrap();
        shared_b.poptrie().audit().unwrap();
        let ra = shared_a.poptrie().audit().unwrap();
        let rb = shared_b.poptrie().audit().unwrap();
        assert_eq!(
            (ra.leaf_block_refs + rb.leaf_block_refs) as u64,
            handle.total_refs()
        );
    }

    /// The wire-format entry points reject what `Prefix::new` would
    /// silently canonicalize.
    #[test]
    fn announce_rejects_malformed_wire_routes() {
        let mut fib: Fib<u32> = Fib::with_config(cfg(16));
        assert_eq!(
            fib.announce(0x0A00_0000, 33, 1),
            Err(UpdateError::PrefixTooLong { len: 33, width: 32 })
        );
        assert_eq!(
            fib.announce(0x0A00_0001, 8, 1),
            Err(UpdateError::NonCanonical { len: 8 })
        );
        assert_eq!(fib.announce(0x0A00_0000, 8, 1), Ok(Applied::Inserted));
        assert_eq!(fib.lookup(0x0A00_0001), Some(1));
        assert_eq!(
            fib.withdraw(0x0A00_0001, 8),
            Err(UpdateError::NonCanonical { len: 8 })
        );
        assert_eq!(fib.withdraw(0x0A00_0000, 8), Ok(Applied::Withdrawn(1)));
        assert_eq!(fib.lookup(0x0A00_0001), None);
    }

    #[test]
    fn applied_reports_previous_and_changed() {
        assert_eq!(Applied::Inserted.previous(), None);
        assert!(Applied::Inserted.changed());
        assert_eq!(Applied::Replaced(4).previous(), Some(4));
        assert!(Applied::Replaced(4).changed());
        assert_eq!(Applied::Unchanged(4).previous(), Some(4));
        assert!(!Applied::Unchanged(4).changed());
        assert_eq!(Applied::Withdrawn(4).previous(), Some(4));
        assert!(Applied::Withdrawn(4).changed());
        assert_eq!(Applied::Absent.previous(), None);
        assert!(!Applied::Absent.changed());
        assert!(!Applied::Refreshed.changed());
    }

    #[test]
    fn update_errors_render() {
        let cases: Vec<(UpdateError, &str)> = vec![
            (
                UpdateError::PrefixTooLong {
                    len: 129,
                    width: 128,
                },
                "exceeds key width",
            ),
            (UpdateError::NonCanonical { len: 8 }, "host bits"),
            (UpdateError::ReservedNextHop, "reserved"),
            (UpdateError::CapacityExhausted { nodes: 7 }, "2^31"),
        ];
        for (e, needle) in cases {
            let boxed: Box<dyn std::error::Error> = Box::new(e);
            assert!(boxed.to_string().contains(needle), "{boxed}");
        }
    }

    #[test]
    fn prelude_glob_covers_the_vocabulary() {
        use crate::prelude::*;
        let cfg = PoptrieConfig::new().direct_bits(8).build().unwrap();
        let fib: SharedFib<u32> = SharedFib::with_config(cfg);
        fib.insert("10.0.0.0/8".parse().unwrap(), 1).unwrap();
        let snap = fib.snapshot();
        assert_eq!(snap.version(), 1);
        let keys = [0x0A00_0001u32, 0];
        let mut out = [NO_ROUTE; 2];
        snap.lookup_batch(&keys, &mut out);
        assert_eq!(out, [1, NO_ROUTE]);
    }
}

// The cross-crate Lpm conformance contract, instantiated for the Poptrie
// itself (with and without direct pointing, and over the IPv6 key width).
poptrie_rib::lpm_contract_tests!(poptrie_contract_v4, u32, |rib: &RadixTree<u32, u16>| {
    let t: Poptrie<u32> = Builder::new().direct_bits(18).build(rib);
    t
});
poptrie_rib::lpm_contract_tests!(poptrie_contract_no_direct, u32, |rib: &RadixTree<
    u32,
    u16,
>| {
    let t: Poptrie<u32> = Builder::new().direct_bits(0).build(rib);
    t
});
poptrie_rib::lpm_contract_tests!(poptrie_contract_v6, u128, |rib: &RadixTree<u128, u16>| {
    let t: Poptrie<u128> = Builder::new().direct_bits(18).build(rib);
    t
});
