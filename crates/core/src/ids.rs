//! Typed identifiers shared by the engine and the VRF layer.
//!
//! Raw `usize` indices made two very different namespaces — registered
//! ingress sources and virtual routing tables — interchangeable at every
//! call site, and pushed validity checking to runtime (`BadIndex`). These
//! newtypes make a source token unusable where a VRF token is expected
//! (and vice versa) at the type level; the remaining runtime check is
//! only whether the token belongs to *this* engine or registry.

/// A registered ingress source: the position of an
/// `EngineConfig::source` registration, in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(u32);

impl SourceId {
    /// The source registered at position `index` (0-based registration
    /// order).
    pub const fn new(index: u32) -> Self {
        SourceId(index)
    }

    /// The registration-order index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for SourceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "source#{}", self.0)
    }
}

/// A virtual routing table (VRF) in a `VrfTable` registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VrfId(u32);

impl VrfId {
    /// The VRF at registry slot `index`.
    pub const fn new(index: u32) -> Self {
        VrfId(index)
    }

    /// The registry slot index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for VrfId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vrf#{}", self.0)
    }
}
