//! The Poptrie lookup structure and its traversal (Algorithms 1–3).

use poptrie_bitops::{rank1, BatchBackend, Bits};
use poptrie_buddy::Buddy;
use poptrie_rib::{Lpm, NextHop, RadixTree, NO_ROUTE};

use crate::builder::Builder;
use crate::node::{Node16, Node24, NodeRepr};

/// Build a key with the 6-bit chunk value `v` placed at MSB-first bit
/// offset `offset`; bits shifted past the key width drop out (they are
/// the zero-padding of `extract`).
#[inline]
fn shift_chunk<K: Bits>(v: u32, offset: u32) -> K {
    K::from_u128(K::from_high_bits(v, 6).to_u128() >> offset)
}

/// Bit 31 of a direct-pointing entry: set when the entry is a FIB index
/// rather than an internal-node index (§3.4: "the most significant bit
/// indicates whether the direct index points to a FIB entry or an internal
/// node").
pub(crate) const DIRECT_LEAF_BIT: u32 = 1 << 31;

pub use poptrie_bitops::BATCH_LANES;

/// A compiled Poptrie FIB, generic over node layout `N`.
///
/// Use the [`Poptrie`] (leafvec, 24-byte nodes) or [`PoptrieBasic`]
/// (16-byte nodes, §3.1 only) aliases. `K` is `u32` for IPv4 or `u128` for
/// IPv6.
///
/// The structure is immutable through `&self`; recompile with
/// [`Builder::build`] or use [`Fib`](crate::Fib) for incremental updates.
#[derive(Debug, Clone)]
pub struct PoptrieImpl<K: Bits, N: NodeRepr> {
    /// Direct-pointing table of `2^s` entries (§3.4); empty when `s == 0`.
    pub(crate) direct: Vec<u32>,
    /// Flat internal-node array; children of one node are contiguous.
    pub(crate) nodes: Vec<N>,
    /// Flat leaf array. Empty in shared-leaf mode: leaves then live in
    /// `shared_leaves` and every leaf index resolves against the shared
    /// store instead.
    pub(crate) leaves: Vec<NextHop>,
    /// Cross-table shared leaf storage (multi-tenant VRF mode). `None`
    /// for a private table; `Some` when this trie's leaf blocks are
    /// interned extents of a shared fixed arena
    /// ([`crate::shared_leaves`]). Node arrays and the direct table stay
    /// private either way.
    pub(crate) shared_leaves: Option<crate::shared_leaves::LeafStoreHandle>,
    /// Buddy allocator for `nodes` index space (§3: "the contiguous arrays
    /// of internal and leaf nodes are managed by the buddy memory
    /// allocator").
    pub(crate) node_buddy: Buddy,
    /// Buddy allocator for `leaves` index space.
    pub(crate) leaf_buddy: Buddy,
    /// Root node index, used when `s == 0`.
    pub(crate) root: u32,
    /// Number of live internal nodes ("# of inodes" in Table 2).
    pub(crate) inode_count: usize,
    /// Number of live leaves ("# of leaves" in Table 2).
    pub(crate) leaf_count: usize,
    /// Direct-pointing bit count `s`.
    pub(crate) s: u8,
    /// The batched-lookup tier chosen at build time
    /// ([`BatchBackend::detect`]); [`PoptrieImpl::lookup_batch`] jumps
    /// straight to this kernel. Always an available tier, so the
    /// `unsafe` SIMD kernel calls are sound.
    pub(crate) backend: BatchBackend,
    pub(crate) _key: core::marker::PhantomData<K>,
}

/// The Poptrie of the paper: leafvec-compressed, 24-byte nodes.
pub type Poptrie<K = u32> = PoptrieImpl<K, Node24>;

/// The basic Poptrie of §3.1 without leaf compression: 16-byte nodes, one
/// leaf per relevant slot. Only interesting for the Table 2 ablation.
pub type PoptrieBasic<K = u32> = PoptrieImpl<K, Node16>;

/// Size and occupancy statistics (the left half of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoptrieStats {
    /// Number of internal nodes.
    pub inodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Direct-pointing entries (`2^s`, 0 when direct pointing is off).
    pub direct_slots: usize,
    /// Memory footprint in bytes: `inodes * node_size + leaves * 2 +
    /// direct_slots * 4`, the accounting of Tables 2 and 3.
    pub memory_bytes: usize,
}

impl<K: Bits, N: NodeRepr> PoptrieImpl<K, N> {
    /// Start configuring a compilation (direct-pointing bits, aggregation).
    pub fn builder() -> Builder<K, N> {
        Builder::new()
    }

    /// Compile with default options (`s = 18`, route aggregation on) from a
    /// RIB.
    pub fn from_rib(rib: &RadixTree<K, NextHop>) -> Self {
        Builder::new().build(rib)
    }

    /// The direct-pointing size `s` this FIB was compiled with.
    pub fn direct_bits(&self) -> u8 {
        self.s
    }

    /// The batched-lookup dispatch tier this FIB uses (resolved at build
    /// time by [`BatchBackend::detect`], which honors the
    /// `POPTRIE_BACKEND` environment knob).
    pub fn batch_backend(&self) -> BatchBackend {
        self.backend
    }

    /// Force a specific batched-lookup tier, clamped to what the running
    /// CPU supports ([`BatchBackend::clamp_available`]). Returns the tier
    /// actually installed. Scalar lookups ([`PoptrieImpl::lookup`]) are
    /// unaffected; this only selects the `lookup_batch` kernel — the
    /// differential tests use it to pit the tiers against each other on
    /// one structure.
    pub fn set_batch_backend(&mut self, backend: BatchBackend) -> BatchBackend {
        self.backend = backend.clamp_available();
        self.backend
    }

    /// Whether this trie resolves leaves out of a cross-table shared
    /// store ([`crate::shared_leaves`]) rather than a private leaf array.
    pub fn is_shared_leaves(&self) -> bool {
        self.shared_leaves.is_some()
    }

    /// The shared leaf store handle, when in shared-leaf mode.
    pub fn shared_leaves(&self) -> Option<&crate::shared_leaves::LeafStoreHandle> {
        self.shared_leaves.as_ref()
    }

    /// Number of addressable leaf slots (private array length, or the
    /// shared store's capacity).
    #[inline]
    pub(crate) fn leaf_slots(&self) -> usize {
        match &self.shared_leaves {
            Some(h) => h.store().capacity(),
            None => self.leaves.len(),
        }
    }

    /// Read leaf slot `li` (bounds-checked; the cold paths — ranges,
    /// invariant checks — use this).
    #[inline]
    pub(crate) fn leaf_at(&self, li: usize) -> NextHop {
        match &self.shared_leaves {
            Some(h) => h.store().get(li),
            None => self.leaves[li],
        }
    }

    /// Read leaf slot `li` without a bounds check — the hot-path leaf
    /// resolution. The branch on storage mode predicts perfectly (it
    /// never changes for a given trie).
    ///
    /// # Safety
    ///
    /// `li` must index a live leaf block of this trie (the structural
    /// invariant behind every `base0 + leaf_rank(v) - 1` computation).
    #[inline(always)]
    pub(crate) unsafe fn leaf_at_unchecked(&self, li: usize) -> NextHop {
        match &self.shared_leaves {
            Some(h) => h.store().get_unchecked(li),
            None => *self.leaves.get_unchecked(li),
        }
    }

    /// Base pointer of the leaf storage (private array or shared slab),
    /// for the SIMD kernels' leaf loads. See
    /// [`SharedLeaves::as_ptr`](crate::shared_leaves::SharedLeaves::as_ptr)
    /// for why plain loads through the shared pointer are race-free.
    #[inline(always)]
    pub(crate) fn leaf_base_ptr(&self) -> *const NextHop {
        match &self.shared_leaves {
            Some(h) => h.store().as_ptr(),
            None => self.leaves.as_ptr(),
        }
    }

    /// Prefetch the line holding leaf slot `li` (hint only, never faults;
    /// out-of-range indices are dropped).
    #[inline(always)]
    pub(crate) fn prefetch_leaf(&self, li: usize) {
        if li < self.leaf_slots() {
            poptrie_bitops::prefetch_read(self.leaf_base_ptr().wrapping_add(li));
        }
    }

    /// Longest-prefix-match lookup. Returns the next hop of the most
    /// specific matching route, or `None` when nothing matches.
    #[inline]
    pub fn lookup(&self, key: K) -> Option<NextHop> {
        let nh = self.lookup_raw(key);
        (nh != NO_ROUTE).then_some(nh)
    }

    /// The raw lookup of Algorithms 1–3, returning [`NO_ROUTE`] (0) for a
    /// miss. This is the hot path benchmarked in the paper.
    ///
    /// Array accesses use unchecked indexing: every index is produced by
    /// the builder/updater under the structural invariants that
    /// [`PoptrieImpl::check_invariants`] verifies (direct entries point at
    /// live nodes, child blocks span `popcnt(vector)` slots, leaf ranks
    /// stay within each node's leaf block). The paper's C implementation
    /// is bound-check-free for the same reason; debug builds keep the
    /// checks.
    #[inline]
    pub fn lookup_raw(&self, key: K) -> NextHop {
        let mut index: u32;
        let mut offset: u32;
        if self.s != 0 {
            // Algorithm 3: direct pointing over the top s bits.
            let di = key.extract(0, self.s as u32) as usize;
            debug_assert!(di < self.direct.len());
            // SAFETY: `extract(key, 0, s)` yields s bits, and
            // `direct.len() == 1 << s` by construction.
            let entry = unsafe { *self.direct.get_unchecked(di) };
            if entry & DIRECT_LEAF_BIT != 0 {
                #[cfg(feature = "telemetry")]
                crate::telemetry::record_direct_hit(false);
                #[cfg(feature = "trace")]
                crate::phase::record_phase_direct();
                return (entry & !DIRECT_LEAF_BIT) as NextHop;
            }
            index = entry;
            offset = self.s as u32;
        } else {
            index = self.root;
            offset = 0;
        }
        // Algorithm 1 main loop (k = 6).
        loop {
            debug_assert!((index as usize) < self.nodes.len());
            // SAFETY: `index` is the root, a direct entry or
            // `base1 + rank - 1` of a live node; all point into `nodes`
            // by the structural invariant.
            let node = unsafe { self.nodes.get_unchecked(index as usize) };
            let v = key.extract(offset, 6);
            let vector = node.vector();
            if vector & (1u64 << v) != 0 {
                index = node.base1() + rank1(vector, v) - 1;
                offset += 6;
                // A node must distinguish at least one real key bit, so a
                // child can only exist at an offset strictly below the key
                // width; `extract` zero-pads any chunk that runs past the
                // end, so even a corrupt trie cannot make release builds
                // read garbage bits — this assert is the diagnostic, not
                // the safety net.
                debug_assert!(
                    offset < K::BITS,
                    "traversal ran past the key width; corrupt trie"
                );
            } else {
                // Algorithm 1 line 13–15 / Algorithm 2.
                let li = (node.base0() + node.leaf_rank(v) - 1) as usize;
                debug_assert!(li < self.leaf_slots());
                #[cfg(feature = "telemetry")]
                crate::telemetry::record_leaf_resolution(
                    false,
                    (offset - self.s as u32) / 6 + 1,
                    N::COMPRESSES_LEAVES,
                );
                #[cfg(feature = "trace")]
                crate::phase::record_phase_descent((offset - self.s as u32) / 6 + 1);
                // SAFETY: `leaf_rank(v)` is in `1..=leaf_count()` for a
                // relevant slot and the node's leaf block
                // `[base0, base0 + leaf_count)` is live leaf storage.
                return unsafe { self.leaf_at_unchecked(li) };
            }
        }
    }

    /// Classify the phase a lookup of `key` resolves in — direct-table
    /// hit or descent of a given depth — without touching the phase
    /// counters or the route result. The `repro trace` harness uses this
    /// to partition a traffic sample into per-phase batches before
    /// measuring each partition under the perf-counter group, so the
    /// attribution ("direct hits cost X cycles, depth-d descents cost Y")
    /// is measured, not inferred.
    #[cfg(feature = "trace")]
    pub fn lookup_phase(&self, key: K) -> crate::phase::LookupPhase {
        let mut index: u32;
        let mut offset: u32;
        if self.s != 0 {
            let di = key.extract(0, self.s as u32) as usize;
            let entry = self.direct[di];
            if entry & DIRECT_LEAF_BIT != 0 {
                return crate::phase::LookupPhase::Direct;
            }
            index = entry;
            offset = self.s as u32;
        } else {
            index = self.root;
            offset = 0;
        }
        loop {
            let node = &self.nodes[index as usize];
            let v = key.extract(offset, 6);
            let vector = node.vector();
            if vector & (1u64 << v) != 0 {
                index = node.base1() + rank1(vector, v) - 1;
                offset += 6;
            } else {
                return crate::phase::LookupPhase::Descent((offset - self.s as u32) / 6 + 1);
            }
        }
    }

    /// Batched longest-prefix-match lookup: resolves `keys[i]` into
    /// `out[i]`, storing [`NO_ROUTE`] for a miss.
    ///
    /// The keys are processed [`BATCH_LANES`] at a time as an interleaved
    /// state machine: every in-flight key advances one trie level per
    /// round, and as soon as a lane knows its *next* node (or leaf)
    /// index, it issues a software prefetch for that line
    /// ([`poptrie_bitops::prefetch_read`]) and only dereferences it on
    /// the following round. A scalar lookup is a chain of dependent
    /// loads — direct table, node, node, …, leaf — whose latency the
    /// out-of-order window cannot hide once the structure spills out of
    /// L2; interleaving `BATCH_LANES` independent chains keeps that many
    /// cache misses in flight at once, which is where the batched mode's
    /// speedup on random traffic comes from. Semantics are exactly those
    /// of [`PoptrieImpl::lookup_raw`] per key.
    ///
    /// # Panics
    /// If `keys.len() != out.len()`.
    pub fn lookup_batch(&self, keys: &[K], out: &mut [NextHop]) {
        assert_eq!(keys.len(), out.len(), "keys/out length mismatch");
        // The SIMD tiers interleave twice as many keys per chunk
        // ([`crate::batch_simd::SIMD_LANES`]): their gathers fetch a
        // whole 8-lane group's node words in one instruction, so the
        // wider chunk buys extra miss-level parallelism without doubling
        // the bookkeeping the way a wider scalar walker would.
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            BatchBackend::Avx2 => {
                let w = crate::batch_simd::SIMD_LANES;
                for (keys, out) in keys.chunks(w).zip(out.chunks_mut(w)) {
                    // SAFETY: `backend` is only ever set to an available
                    // tier (detect/clamp at build time), so AVX2 + popcnt
                    // are present.
                    unsafe { self.lookup_batch_chunk_avx2(keys, out) }
                }
            }
            #[cfg(target_arch = "x86_64")]
            BatchBackend::Avx512 => {
                let w = crate::batch_simd::SIMD_LANES;
                for (keys, out) in keys.chunks(w).zip(out.chunks_mut(w)) {
                    // SAFETY: as above, with AVX-512F verified too.
                    unsafe { self.lookup_batch_chunk_avx512(keys, out) }
                }
            }
            _ => {
                for (keys, out) in keys.chunks(BATCH_LANES).zip(out.chunks_mut(BATCH_LANES)) {
                    self.lookup_batch_chunk(keys, out);
                }
            }
        }
    }

    /// Round 0 of the interleaved walkers — the direct-pointing stage
    /// (Algorithm 3) — shared by the scalar chunk and the SIMD kernels,
    /// generic over the lane count `L`. Issues every lane's direct-table
    /// prefetch before the first demand load, resolves direct leaf hits
    /// straight into `out`, and returns the `live` mask of lanes that
    /// continue into the node walk (their `index`/`offset` primed).
    #[inline(always)]
    pub(crate) fn direct_round<const L: usize>(
        &self,
        keys: &[K],
        out: &mut [NextHop],
        index: &mut [u32; L],
        offset: &mut [u32; L],
    ) -> u32 {
        let n = keys.len();
        debug_assert!(n <= L);
        let mut live: u32 = 0;
        if self.s != 0 {
            for (i, k) in keys.iter().enumerate() {
                let di = k.extract(0, self.s as u32);
                index[i] = di;
                poptrie_bitops::prefetch_index(&self.direct, di as usize);
            }
            for i in 0..n {
                let di = index[i] as usize;
                debug_assert!(di < self.direct.len());
                // SAFETY: as in `lookup_raw`: `extract(key, 0, s)` yields
                // s bits and `direct.len() == 1 << s`.
                let entry = unsafe { *self.direct.get_unchecked(di) };
                if entry & DIRECT_LEAF_BIT != 0 {
                    #[cfg(feature = "telemetry")]
                    crate::telemetry::record_direct_hit(true);
                    #[cfg(feature = "trace")]
                    crate::phase::record_phase_direct();
                    out[i] = (entry & !DIRECT_LEAF_BIT) as NextHop;
                } else {
                    index[i] = entry;
                    offset[i] = self.s as u32;
                    live |= 1 << i;
                    poptrie_bitops::prefetch_index(&self.nodes, entry as usize);
                }
            }
        } else {
            index[..n].fill(self.root);
            live = (((1u64 << n) - 1) & 0xFFFF_FFFF) as u32;
            poptrie_bitops::prefetch_index(&self.nodes, self.root as usize);
        }
        live
    }

    /// One interleaved round-robin pass over at most [`BATCH_LANES`] keys.
    ///
    /// Lane state is three parallel arrays plus two bitmasks instead of an
    /// enum array so the per-round inner loops stay branch-light:
    /// `index`/`offset` drive lanes still walking internal nodes (`live`
    /// mask), `leaf` holds the pending leaf index of lanes whose leaf line
    /// was prefetched last round (`leaf_mask`).
    fn lookup_batch_chunk(&self, keys: &[K], out: &mut [NextHop]) {
        debug_assert!(keys.len() <= BATCH_LANES && keys.len() == out.len());
        #[cfg(feature = "telemetry")]
        crate::telemetry::record_batch_call(keys.len());
        let mut index = [0u32; BATCH_LANES];
        let mut offset = [0u32; BATCH_LANES];
        let mut leaf = [0u32; BATCH_LANES];
        // Round 0: resolve the direct-pointing stage (Algorithm 3) for
        // every lane — shared with the SIMD kernels, which run it at
        // twice this lane count.
        let mut live = self.direct_round(keys, out, &mut index, &mut offset);
        let mut leaf_mask: u32 = 0; // lanes with a prefetched leaf pending

        // Main rounds: each live lane steps one level (Algorithm 1) and
        // prefetches the line it will touch next round; lanes that found
        // their leaf resolve it at the top of the following round, after
        // the prefetch has had a full round to complete.
        while live != 0 || leaf_mask != 0 {
            let mut m = leaf_mask;
            leaf_mask = 0;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let li = leaf[i] as usize;
                debug_assert!(li < self.leaf_slots());
                // SAFETY: `li` was computed as `base0 + leaf_rank(v) - 1`
                // below, in bounds by the structural invariant (see
                // `lookup_raw`).
                out[i] = unsafe { self.leaf_at_unchecked(li) };
            }
            let mut m = live;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                debug_assert!((index[i] as usize) < self.nodes.len());
                // SAFETY: same invariant as `lookup_raw`: the index is a
                // direct entry, the root, or `base1 + rank - 1` of a live
                // node.
                let node = unsafe { self.nodes.get_unchecked(index[i] as usize) };
                let v = keys[i].extract(offset[i], 6);
                let vector = node.vector();
                if vector & (1u64 << v) != 0 {
                    let next = node.base1() + rank1(vector, v) - 1;
                    index[i] = next;
                    offset[i] += 6;
                    // Same bound as `lookup_raw`: a child node must sit
                    // below the key width. The earlier `< K::BITS + 6`
                    // bound tolerated a whole phantom level past the key
                    // end; `extract`'s zero-padding kept that from being
                    // a memory-safety issue, but on a corrupt trie the
                    // walker would have silently used chunk value 0
                    // instead of flagging the corruption.
                    debug_assert!(
                        offset[i] < K::BITS,
                        "traversal ran past the key width; corrupt trie"
                    );
                    poptrie_bitops::prefetch_index(&self.nodes, next as usize);
                } else {
                    let li = node.base0() + node.leaf_rank(v) - 1;
                    leaf[i] = li;
                    live &= !(1 << i);
                    leaf_mask |= 1 << i;
                    #[cfg(feature = "telemetry")]
                    crate::telemetry::record_leaf_resolution(
                        true,
                        (offset[i] - self.s as u32) / 6 + 1,
                        N::COMPRESSES_LEAVES,
                    );
                    #[cfg(feature = "trace")]
                    crate::phase::record_phase_descent((offset[i] - self.s as u32) / 6 + 1);
                    self.prefetch_leaf(li as usize);
                }
            }
        }
    }

    /// Size and occupancy statistics (Table 2 columns).
    pub fn stats(&self) -> PoptrieStats {
        PoptrieStats {
            inodes: self.inode_count,
            leaves: self.leaf_count,
            direct_slots: self.direct.len(),
            memory_bytes: self.inode_count * N::SIZE
                + self.leaf_count * core::mem::size_of::<NextHop>()
                + self.direct.len() * 4,
        }
    }

    /// Enumerate the FIB as effective address ranges: sorted
    /// `(start_key, next_hop)` pairs where each entry covers the keys from
    /// its `start_key` up to (not including) the next entry's, and the
    /// last entry extends to the end of the address space. Adjacent ranges
    /// with equal next hops are merged, and [`NO_ROUTE`] ranges are
    /// included (so coverage is total).
    ///
    /// This is the view DXR builds its whole structure from; here it
    /// serves FIB diffing, serialization and cross-validation — two FIBs
    /// are semantically equal iff their range lists are equal.
    pub fn ranges(&self) -> Vec<(K, NextHop)> {
        let mut out: Vec<(K, NextHop)> = Vec::new();
        let mut push = |start: K, nh: NextHop, out: &mut Vec<(K, NextHop)>| match out.last() {
            Some(&(_, last)) if last == nh => {}
            _ => out.push((start, nh)),
        };
        if self.s == 0 {
            self.node_ranges(self.root, K::ZERO, 0, &mut push, &mut out);
        } else {
            let s = self.s as u32;
            for di in 0..self.direct.len() as u32 {
                let start = K::from_high_bits(di, s);
                let entry = self.direct[di as usize];
                if entry & DIRECT_LEAF_BIT != 0 {
                    push(start, (entry & !DIRECT_LEAF_BIT) as NextHop, &mut out);
                } else {
                    self.node_ranges(entry, start, s, &mut push, &mut out);
                }
            }
        }
        out
    }

    /// Emit the ranges of the subtree at node `idx`, whose chunk starts at
    /// key `base` with bit offset `offset`.
    fn node_ranges(
        &self,
        idx: u32,
        base: K,
        offset: u32,
        push: &mut impl FnMut(K, NextHop, &mut Vec<(K, NextHop)>),
        out: &mut Vec<(K, NextHop)>,
    ) {
        let node = &self.nodes[idx as usize];
        let vector = node.vector();
        // Slots whose low bits fall past the key width are zero-padding
        // duplicates of slot values with those bits clear; skip them.
        let pad = (offset + 6).saturating_sub(K::BITS);
        let pad_mask = (1u32 << pad) - 1;
        for v in 0..64u32 {
            if v & pad_mask != 0 {
                continue;
            }
            // Place the chunk value below the already-fixed offset bits.
            let start = base.or(shift_chunk::<K>(v, offset));
            if vector & (1u64 << v) != 0 {
                let child = node.base1() + rank1(vector, v) - 1;
                self.node_ranges(child, start, offset + 6, push, out);
            } else {
                let li = node.base0() + node.leaf_rank(v) - 1;
                push(start, self.leaf_at(li as usize), out);
            }
        }
    }

    /// Verify internal consistency: every reachable node and leaf index is
    /// in bounds, child blocks are sized by `popcnt(vector)`, `leafvec` has
    /// a run-start at or before every relevant slot, and live node/leaf
    /// counts match reachability. Used by tests and debug builds; not a hot
    /// path.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut inodes = 0usize;
        let mut leaves = 0usize;
        let mut roots: Vec<u32> = Vec::new();
        if self.s == 0 {
            roots.push(self.root);
        } else {
            if self.direct.len() != 1usize << self.s {
                return Err(format!(
                    "direct table length {} != 2^{}",
                    self.direct.len(),
                    self.s
                ));
            }
            for &e in &self.direct {
                if e & DIRECT_LEAF_BIT == 0 {
                    roots.push(e);
                }
            }
        }
        for root in roots {
            self.check_node(root, 0, &mut inodes, &mut leaves)?;
        }
        if inodes != self.inode_count {
            return Err(format!(
                "inode count mismatch: reachable {} recorded {}",
                inodes, self.inode_count
            ));
        }
        if leaves != self.leaf_count {
            return Err(format!(
                "leaf count mismatch: reachable {} recorded {}",
                leaves, self.leaf_count
            ));
        }
        Ok(())
    }

    fn check_node(
        &self,
        idx: u32,
        depth: u32,
        inodes: &mut usize,
        leaves: &mut usize,
    ) -> Result<(), String> {
        if depth > (K::BITS / 6) + 2 {
            return Err("trie deeper than the key width allows".into());
        }
        let Some(node) = self.nodes.get(idx as usize) else {
            return Err(format!("node index {idx} out of bounds"));
        };
        *inodes += 1;
        let vector = node.vector();
        let nleaves = node.leaf_count();
        *leaves += nleaves as usize;
        if nleaves > 0 {
            let end = node.base0() as usize + nleaves as usize;
            if end > self.leaf_slots() {
                return Err(format!("leaf block of node {idx} out of bounds"));
            }
        }
        // Every relevant (leaf) slot must resolve to a leaf inside the
        // node's own block: rank must be in 1..=nleaves.
        for v in 0..64u32 {
            if vector & (1u64 << v) == 0 {
                let r = node.leaf_rank(v);
                if r == 0 || r > nleaves {
                    return Err(format!(
                        "node {idx}: slot {v} has leaf rank {r} outside 1..={nleaves}"
                    ));
                }
            }
        }
        let nchildren = vector.count_ones();
        for i in 0..nchildren {
            self.check_node(node.base1() + i, depth + 1, inodes, leaves)?;
        }
        Ok(())
    }
}

impl<K: Bits, N: NodeRepr> Lpm<K> for PoptrieImpl<K, N> {
    fn lookup(&self, key: K) -> Option<NextHop> {
        PoptrieImpl::lookup(self, key)
    }

    fn lookup_batch(&self, keys: &[K], out: &mut [NextHop]) {
        PoptrieImpl::lookup_batch(self, keys, out)
    }

    fn memory_bytes(&self) -> usize {
        self.stats().memory_bytes
    }

    fn name(&self) -> String {
        let kind = if N::COMPRESSES_LEAVES {
            "Poptrie"
        } else {
            "PoptrieBasic"
        };
        if self.s == 0 {
            format!("{kind}0")
        } else {
            format!("{kind}{}", self.s)
        }
    }
}
