//! Lookup-phase attribution for the flight recorder (the `trace` feature).
//!
//! The paper attributes per-lookup cost to two phases: the §3.4
//! direct-pointing probe (one array load, depth 0) and the §3.1 node
//! descent (popcount walk, depth ≥ 1). The `repro trace` harness divides
//! perf-counter deltas (cycles, cache misses) between those phases, which
//! requires knowing — for a given key set against a given trie — how many
//! lookups resolved in each phase and how deep the descents went. This
//! module keeps exactly those two tallies as process-wide sharded
//! counters, incremented from `#[cfg(feature = "trace")]` sites on every
//! lookup path (scalar, interleaved scalar batch, AVX2/AVX-512 kernels).
//!
//! # Zero cost when disabled
//!
//! Like the `telemetry` feature, every instrumentation site is a cfg'd
//! block: the default build compiles to the uninstrumented code with no
//! branch, call, or symbol. The CI trace gate greps the default release
//! artifacts for this module's metric names to prove it.
//!
//! # Relation to `telemetry`
//!
//! The `telemetry` depth histogram carries the same information at finer
//! grain; this module exists so `trace` builds don't have to drag in the
//! full telemetry surface, and so phase attribution works (and
//! reconciles) when both features are on. The two gates are independent.

use poptrie_telemetry::{Counter, TelemetryRegistry};

static DIRECT_HITS: Counter = Counter::new();
static DESCENTS: Counter = Counter::new();
static DESCENT_LEVELS: Counter = Counter::new();

/// A lookup resolved by the direct-pointing table alone (depth 0).
#[inline]
pub(crate) fn record_phase_direct() {
    DIRECT_HITS.inc();
}

/// A lookup that descended `depth ≥ 1` internal nodes before resolving.
#[inline]
pub(crate) fn record_phase_descent(depth: u32) {
    DESCENTS.inc();
    DESCENT_LEVELS.add(depth as u64);
}

/// The phase a single lookup resolves in. Returned by
/// [`lookup_phase`](crate::trie::PoptrieImpl::lookup_phase), which
/// classifies a key without disturbing the counters — the `repro trace`
/// harness uses it to partition a traffic sample into per-phase batches
/// before measuring each partition under the perf group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupPhase {
    /// Resolved by the direct table: one load, depth 0.
    Direct,
    /// Descended this many internal nodes (≥ 1) before the leaf.
    Descent(u32),
}

/// A point-in-time copy of the phase counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Lookups resolved by the direct-pointing table (depth 0).
    pub direct_hits: u64,
    /// Lookups that descended at least one internal node.
    pub descents: u64,
    /// Total internal nodes walked across all descents.
    pub descent_levels: u64,
}

impl PhaseSnapshot {
    /// Total lookups observed (each records exactly one phase).
    pub fn total(&self) -> u64 {
        self.direct_hits + self.descents
    }

    /// Mean descent depth over descending lookups (0.0 when none).
    pub fn mean_descent_depth(&self) -> f64 {
        if self.descents == 0 {
            0.0
        } else {
            self.descent_levels as f64 / self.descents as f64
        }
    }

    /// Render as a [`TelemetryRegistry`] slice, mergeable into the
    /// unified scrape.
    pub fn registry(&self) -> TelemetryRegistry {
        let mut r = TelemetryRegistry::new();
        r.counter(
            "poptrie_phase_lookups_total",
            "Lookups by resolution phase (trace feature).",
            &[("phase", "direct")],
            self.direct_hits,
        );
        r.counter(
            "poptrie_phase_lookups_total",
            "Lookups by resolution phase (trace feature).",
            &[("phase", "descent")],
            self.descents,
        );
        r.counter(
            "poptrie_phase_descent_levels_total",
            "Internal nodes walked across all descending lookups.",
            &[],
            self.descent_levels,
        );
        r
    }
}

/// Read the process-wide phase counters.
pub fn snapshot() -> PhaseSnapshot {
    PhaseSnapshot {
        direct_hits: DIRECT_HITS.get(),
        descents: DESCENTS.get(),
        descent_levels: DESCENT_LEVELS.get(),
    }
}

/// Zero the process-wide phase counters. Serialize against the workload
/// being measured, as with `telemetry::reset`.
pub fn reset() {
    DIRECT_HITS.reset();
    DESCENTS.reset();
    DESCENT_LEVELS.reset();
}
