//! Cross-table shared leaf storage for multi-tenant (VRF) deployments.
//!
//! A Poptrie leaf is two bytes; with §3.3's run compression a node stores
//! one leaf per *run*, and across a full table leaves still account for a
//! third to four fifths of the compiled bytes. When thousands of virtual
//! routing tables (VRFs) are provisioned from a common base table, most
//! leaf blocks are byte-identical across tenants — the entropy headroom
//! Rétvári et al. point at. This module lets many `Poptrie` instances
//! resolve their leaves out of **one** fixed arena:
//!
//! * [`SharedLeaves`] — the backing store: a fixed-capacity slab of
//!   atomic 16-bit next hops. Fixed capacity is what keeps reads
//!   lock-free: the slab never moves, so a reader holding an RCU snapshot
//!   dereferences raw offsets with no coordination. Writes use `Relaxed`
//!   stores; the happens-before edge a reader needs is supplied by the
//!   RCU publish it acquired its snapshot through (a new snapshot is
//!   published strictly after its leaf blocks are fully written).
//! * [`LeafInterner`] — the allocation protocol the writer side talks:
//!   content-addressed `intern` (identical blocks across tenants share
//!   one extent), refcounted `release`, and epoch-based reclamation so a
//!   retired block's slots are recycled only after every RCU snapshot
//!   that could still reference it has dropped. The concrete interner
//!   (`poptrie-vrf`'s `NextHopIntern`) lives above this crate; the trie
//!   only needs the protocol.
//! * [`LeafStoreHandle`] — what a shared-mode `Poptrie` actually carries:
//!   the store (read side, lock-free) plus the interner (write side,
//!   mutexed — writers are already serialized per the §3.5 model).
//!
//! Node arrays and direct tables stay private per table: structural
//! isolation is what makes one tenant's churn invisible to another's
//! readers, and per-table snapshot clones stay proportional to that
//! tenant's own table.

use core::sync::atomic::{AtomicU16, Ordering};
use std::sync::{Arc, Mutex};

use poptrie_rib::{NextHop, NO_ROUTE};

/// A fixed-capacity slab of 16-bit next hops shared by every table (and
/// every published snapshot) of a VRF group.
///
/// The slab is sized once and never reallocates; extents within it are
/// managed by a [`LeafInterner`] over a fixed
/// [`ArenaOwner`](poptrie_buddy::ArenaOwner). Reads are single `Relaxed`
/// atomic loads — on the lookup path this compiles to the same plain
/// 16-bit load a private `Vec<u16>` leaf array costs.
pub struct SharedLeaves {
    slots: Box<[AtomicU16]>,
}

impl core::fmt::Debug for SharedLeaves {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedLeaves")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl SharedLeaves {
    /// A zero-filled ([`NO_ROUTE`]) store of `capacity` leaf slots.
    pub fn new(capacity: u32) -> Arc<Self> {
        let mut v = Vec::with_capacity(capacity as usize);
        v.resize_with(capacity as usize, || AtomicU16::new(NO_ROUTE));
        Arc::new(SharedLeaves {
            slots: v.into_boxed_slice(),
        })
    }

    /// Total leaf slots in the store.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The store's memory footprint in bytes (`capacity * 2`).
    pub fn bytes(&self) -> usize {
        self.slots.len() * core::mem::size_of::<NextHop>()
    }

    /// Read slot `i` (bounds-checked).
    #[inline]
    pub fn get(&self, i: usize) -> NextHop {
        self.slots[i].load(Ordering::Relaxed)
    }

    /// Read slot `i` without a bounds check.
    ///
    /// # Safety
    ///
    /// `i < self.capacity()`. Lookup paths call this with indices that the
    /// structural invariant keeps inside live interned blocks.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, i: usize) -> NextHop {
        debug_assert!(i < self.slots.len());
        self.slots.get_unchecked(i).load(Ordering::Relaxed)
    }

    /// Write `vals` into the extent starting at `off`. Only the interner
    /// calls this, on freshly allocated (reader-unreachable) extents;
    /// the RCU publish that later makes the extent reachable provides
    /// the ordering readers need.
    pub fn write_block(&self, off: u32, vals: &[NextHop]) {
        let base = off as usize;
        for (i, &v) in vals.iter().enumerate() {
            self.slots[base + i].store(v, Ordering::Relaxed);
        }
    }

    /// Whether the extent `[off, off + len)` currently holds exactly
    /// `vals` — the content-equality probe behind interning.
    pub fn block_eq(&self, off: u32, vals: &[NextHop]) -> bool {
        let base = off as usize;
        vals.iter()
            .enumerate()
            .all(|(i, &v)| self.slots[base + i].load(Ordering::Relaxed) == v)
    }

    /// Base pointer of the slab, for the batched-lookup kernels' leaf
    /// loads and prefetches. `AtomicU16` is `repr(transparent)` over
    /// `u16`, and every location a kernel dereferences is quiescent for
    /// the lifetime of the snapshot it serves (the interner only writes
    /// reader-unreachable extents), so plain loads through this pointer
    /// are race-free.
    pub fn as_ptr(&self) -> *const NextHop {
        self.slots.as_ptr() as *const NextHop
    }
}

/// An epoch reclamation guard. Every published FIB snapshot of a shared
/// group holds one; the interner recycles a retired extent only once all
/// guards issued at or before the retirement epoch have dropped. Dropping
/// a guard is a plain `Arc` release — readers never talk to the interner.
#[derive(Debug)]
pub struct EpochGuard {
    epoch: u64,
}

impl EpochGuard {
    /// A guard stamped with `epoch`. Interner implementations create one
    /// per publish and keep a [`Weak`](std::sync::Weak) to observe its
    /// death.
    pub fn new(epoch: u64) -> Arc<Self> {
        Arc::new(EpochGuard { epoch })
    }

    /// The publish epoch this guard pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// The writer-side allocation protocol of a shared leaf store:
/// content-addressed interning with refcounts and epoch-deferred
/// reclamation. Implemented by `poptrie-vrf`'s `NextHopIntern`; the trie
/// crates program against the trait so the dependency points upward.
pub trait LeafInterner: Send + core::fmt::Debug {
    /// Install the leaf block `vals`, returning its extent offset: either
    /// an existing extent with identical content (reference count
    /// incremented) or a freshly allocated, freshly written one. `None`
    /// when the fixed arena cannot fit a new extent.
    fn intern(&mut self, vals: &[NextHop]) -> Option<u32>;

    /// Drop one reference to the extent `[off, off + len)` previously
    /// returned by [`intern`](LeafInterner::intern) for a block of `len`
    /// leaves. At zero references the extent leaves the content index
    /// immediately (it can no longer be deduplicated against) and its
    /// slots are recycled once no epoch guard from before the retirement
    /// remains alive.
    fn release(&mut self, off: u32, len: u32);

    /// Whether `[off, off + rounded(len))` is a live interned extent —
    /// the auditor's liveness probe, mirroring
    /// [`Buddy::is_live_block`](poptrie_buddy::Buddy::is_live_block).
    fn is_live_block(&self, off: u32, len: u32) -> bool;

    /// Start a new publish epoch and return its guard. Called under the
    /// table's writer lock at every snapshot publish; also the natural
    /// point to collect extents whose retirement epoch has quiesced.
    fn begin_epoch(&mut self) -> Arc<EpochGuard>;

    /// Total outstanding references across all live extents — the
    /// cross-check target for per-table audits (the sum of every table's
    /// referenced leaf blocks must equal this exactly).
    fn total_refs(&self) -> u64;
}

/// What a shared-mode `Poptrie` carries: the read-side store and the
/// write-side interner of one VRF group. Clones share both (`Arc`s).
#[derive(Clone)]
pub struct LeafStoreHandle {
    store: Arc<SharedLeaves>,
    intern: Arc<Mutex<dyn LeafInterner>>,
}

impl core::fmt::Debug for LeafStoreHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LeafStoreHandle")
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

impl LeafStoreHandle {
    /// Pair a store with the interner managing its extents.
    pub fn new(store: Arc<SharedLeaves>, intern: Arc<Mutex<dyn LeafInterner>>) -> Self {
        LeafStoreHandle { store, intern }
    }

    /// The read-side store.
    pub fn store(&self) -> &Arc<SharedLeaves> {
        &self.store
    }

    /// Whether two handles name the same store (same VRF group).
    pub fn same_store(&self, other: &LeafStoreHandle) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }

    fn interner(&self) -> std::sync::MutexGuard<'_, dyn LeafInterner + 'static> {
        self.intern
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Forward [`LeafInterner::intern`].
    pub fn intern(&self, vals: &[NextHop]) -> Option<u32> {
        self.interner().intern(vals)
    }

    /// Forward [`LeafInterner::release`].
    pub fn release(&self, off: u32, len: u32) {
        self.interner().release(off, len)
    }

    /// Forward [`LeafInterner::is_live_block`].
    pub fn is_live_block(&self, off: u32, len: u32) -> bool {
        self.interner().is_live_block(off, len)
    }

    /// Forward [`LeafInterner::begin_epoch`].
    pub fn begin_epoch(&self) -> Arc<EpochGuard> {
        self.interner().begin_epoch()
    }

    /// Forward [`LeafInterner::total_refs`].
    pub fn total_refs(&self) -> u64 {
        self.interner().total_refs()
    }
}
