//! Internal node representations.
//!
//! The paper describes two node layouts (§3): the *basic* node of 16 bytes
//! (`vector`, `base0`, `base1`) where every relevant slot has its own leaf,
//! and the *leafvec* node of 24 bytes that adds a second bit-vector to
//! compress runs of identical leaves. Table 2 compares the two; this crate
//! keeps both behind the [`NodeRepr`] trait so [`Poptrie`] and
//! [`PoptrieBasic`] share every line of builder and traversal logic while
//! keeping their true in-memory sizes (24 vs 16 bytes).
//!
//! [`Poptrie`]: crate::Poptrie
//! [`PoptrieBasic`]: crate::PoptrieBasic

use poptrie_bitops::{rank0, rank1};

/// Operations a Poptrie node layout must provide.
///
/// The hot-path contract: `vector()` drives the internal/leaf decision and
/// the child index; [`NodeRepr::leaf_rank`] yields the 1-based rank of the
/// leaf slot for chunk value `v` (the `bc` of Algorithm 1 line 14 /
/// Algorithm 2).
pub trait NodeRepr: Copy + Clone + Send + Sync + 'static {
    /// Construct a node. `leafvec` is ignored by layouts without one.
    fn new(vector: u64, leafvec: u64, base0: u32, base1: u32) -> Self;

    /// The child-type bit vector (`1` = internal child, `0` = leaf).
    fn vector(&self) -> u64;

    /// Base index of the node's children in the internal-node array.
    fn base1(&self) -> u32;

    /// Base index of the node's leaves in the leaf array.
    fn base0(&self) -> u32;

    /// 1-based rank of the leaf for chunk value `v`; the leaf lives at
    /// `base0() + leaf_rank(v) - 1`. Only meaningful when bit `v` of
    /// `vector()` is clear.
    fn leaf_rank(&self, v: u32) -> u32;

    /// Number of leaves owned by this node (the size of its leaf block).
    fn leaf_count(&self) -> u32;

    /// Whether this layout compresses identical adjacent leaves (§3.3).
    const COMPRESSES_LEAVES: bool;

    /// Size in bytes, as reported in the paper's memory accounting.
    const SIZE: usize = core::mem::size_of::<Self>();

    /// Byte offset of the packed `base0` (low 32 bits) / `base1` (high 32
    /// bits) pair within the node, as read by one little-endian `u64`
    /// gather. The SIMD kernels fetch both bases of a node in a single
    /// gather lane; `layout_tests` pins the offsets against `repr(C)`.
    const BASES_BYTES: usize;

    /// Byte offset of the auxiliary `u64` word that [`NodeRepr::rank_word`]
    /// consumes (the `leafvec` for [`Node24`]; `Node16` has no auxiliary
    /// word, so it re-reads `vector` at offset 0 — the gather of that lane
    /// is then redundant but harmless).
    const AUX_BYTES: usize;

    /// The word whose 1-rank at slot `v` is [`NodeRepr::leaf_rank`]:
    /// `rank1(rank_word(vector, aux), v) == leaf_rank(v)` for every leaf
    /// slot. `aux` is the `u64` gathered from [`NodeRepr::AUX_BYTES`].
    fn rank_word(vector: u64, aux: u64) -> u64;
}

/// The 24-byte node with the leafvec extension (§3.3) — the layout the
/// paper simply calls "Poptrie".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Node24 {
    /// Child-type bit vector: bit `n` set ⇒ internal child for chunk `n`.
    pub vector: u64,
    /// Leaf-run start bit vector: bit `n` set ⇒ a new run of identical
    /// leaves starts at slot `n` (irrelevant slots — those with an internal
    /// child — never set their bit and never break a run: the "hole
    /// punching" recovery of Figure 3).
    pub leafvec: u64,
    /// Base index into the leaf array.
    pub base0: u32,
    /// Base index into the internal-node array.
    pub base1: u32,
}

impl NodeRepr for Node24 {
    #[inline(always)]
    fn new(vector: u64, leafvec: u64, base0: u32, base1: u32) -> Self {
        Node24 {
            vector,
            leafvec,
            base0,
            base1,
        }
    }

    #[inline(always)]
    fn vector(&self) -> u64 {
        self.vector
    }

    #[inline(always)]
    fn base1(&self) -> u32 {
        self.base1
    }

    #[inline(always)]
    fn base0(&self) -> u32 {
        self.base0
    }

    #[inline(always)]
    fn leaf_rank(&self, v: u32) -> u32 {
        // Algorithm 2: popcnt(leafvec & ((2 << v) - 1)).
        rank1(self.leafvec, v)
    }

    #[inline(always)]
    fn leaf_count(&self) -> u32 {
        self.leafvec.count_ones()
    }

    const COMPRESSES_LEAVES: bool = true;

    const BASES_BYTES: usize = 16;
    const AUX_BYTES: usize = 8;

    #[inline(always)]
    fn rank_word(_vector: u64, aux: u64) -> u64 {
        aux // the leafvec
    }
}

/// The 16-byte basic node (§3.1): one leaf per relevant slot, leaf index
/// computed by counting zeros in `vector`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Node16 {
    /// Child-type bit vector: bit `n` set ⇒ internal child for chunk `n`.
    pub vector: u64,
    /// Base index into the leaf array.
    pub base0: u32,
    /// Base index into the internal-node array.
    pub base1: u32,
}

impl NodeRepr for Node16 {
    #[inline(always)]
    fn new(vector: u64, _leafvec: u64, base0: u32, base1: u32) -> Self {
        Node16 {
            vector,
            base0,
            base1,
        }
    }

    #[inline(always)]
    fn vector(&self) -> u64 {
        self.vector
    }

    #[inline(always)]
    fn base1(&self) -> u32 {
        self.base1
    }

    #[inline(always)]
    fn base0(&self) -> u32 {
        self.base0
    }

    #[inline(always)]
    fn leaf_rank(&self, v: u32) -> u32 {
        // Algorithm 1 line 14: popcnt(~vector & ((2 << v) - 1)).
        rank0(self.vector, v)
    }

    #[inline(always)]
    fn leaf_count(&self) -> u32 {
        64 - self.vector.count_ones()
    }

    const COMPRESSES_LEAVES: bool = false;

    const BASES_BYTES: usize = 8;
    const AUX_BYTES: usize = 0;

    #[inline(always)]
    fn rank_word(vector: u64, _aux: u64) -> u64 {
        // rank0(vector, v) == rank1(!vector, v).
        !vector
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    #[test]
    fn node_sizes_match_paper() {
        // §3: "the total size of an internal node is only 16 bytes. When we
        // use the leafvec extension ... the internal node size becomes 24
        // bytes."
        assert_eq!(core::mem::size_of::<Node16>(), 16);
        assert_eq!(core::mem::size_of::<Node24>(), 24);
        assert_eq!(Node16::SIZE, 16);
        assert_eq!(Node24::SIZE, 24);
    }

    #[test]
    fn gather_offsets_match_repr_c_layout() {
        // The SIMD kernels read nodes with byte-offset gathers; the
        // offsets promised by the trait must match the real layout.
        assert_eq!(core::mem::offset_of!(Node24, vector), 0);
        assert_eq!(core::mem::offset_of!(Node24, leafvec), Node24::AUX_BYTES);
        assert_eq!(core::mem::offset_of!(Node24, base0), Node24::BASES_BYTES);
        assert_eq!(
            core::mem::offset_of!(Node24, base1),
            Node24::BASES_BYTES + 4
        );
        assert_eq!(core::mem::offset_of!(Node16, vector), 0);
        assert_eq!(core::mem::offset_of!(Node16, base0), Node16::BASES_BYTES);
        assert_eq!(
            core::mem::offset_of!(Node16, base1),
            Node16::BASES_BYTES + 4
        );
        assert_eq!(core::mem::offset_of!(Node16, vector), Node16::AUX_BYTES);
    }

    #[test]
    fn rank_word_reproduces_leaf_rank() {
        let n24 = Node24::new(0b0100, 0b1001, 0, 0);
        let n16 = Node16::new(0b1010, 0, 0, 0);
        for v in 0..64u32 {
            if n24.vector() & (1 << v) == 0 {
                let w = Node24::rank_word(n24.vector, n24.leafvec);
                assert_eq!(poptrie_bitops::rank1(w, v), n24.leaf_rank(v));
            }
            if n16.vector() & (1 << v) == 0 {
                let w = Node16::rank_word(n16.vector, 0);
                assert_eq!(poptrie_bitops::rank1(w, v), n16.leaf_rank(v));
            }
        }
    }

    #[test]
    fn leaf_rank_node16_counts_zeros() {
        let n = Node16::new(0b1010, 0, 0, 0);
        assert_eq!(n.leaf_rank(0), 1); // slot 0 is a leaf, first zero
        assert_eq!(n.leaf_rank(2), 2); // slots 0 and 2 are leaves
        assert_eq!(n.leaf_count(), 62);
    }

    #[test]
    fn leaf_rank_node24_counts_leafvec() {
        let n = Node24::new(0b0100, 0b0001, 0, 0);
        // All leaf slots fall into the single run starting at slot 0.
        assert_eq!(n.leaf_rank(0), 1);
        assert_eq!(n.leaf_rank(1), 1);
        assert_eq!(n.leaf_rank(63), 1);
        assert_eq!(n.leaf_count(), 1);
    }
}
