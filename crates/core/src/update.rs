//! Incremental FIB update (§3.5).
//!
//! A [`Fib`] owns both the RIB (a binary radix tree, as the paper assumes)
//! and the compiled Poptrie. A route change updates the RIB and then
//! surgically replaces only the affected part of the Poptrie:
//!
//! * a prefix **longer** than the direct-pointing size `s` affects exactly
//!   one direct slot — the subtree hanging off that slot is rebuilt from
//!   the RIB through the buddy allocator and the slot is repointed;
//! * a prefix **no longer** than `s` affects a contiguous range of
//!   `2^(s - len)` direct slots, each of which is refreshed the same way
//!   (the paper replaces the whole top-level array in this case; refreshing
//!   only the covered range is strictly less work and equally consistent).
//!
//! Within the affected slot, [`UpdateStrategy::NodeRefresh`] (the default)
//! implements the paper's node reuse: every node whose child-type `vector`
//! is unchanged is kept in place — child indices stay valid — and only
//! leaf blocks that actually changed are reallocated, so a typical BGP
//! path change replaces a handful of leaves and no internal nodes, the
//! §4.9 regime. [`UpdateStrategy::SubtreeRebuild`] recompiles the whole
//! slot subtree instead (simpler, still microseconds; kept for the
//! ablation bench). The buddy allocator mitigates fragmentation across
//! the churn exactly as in §3.5.
//!
//! Incremental compilation always works from the raw (unaggregated) RIB:
//! route aggregation is a semantics-preserving transform, so a FIB whose
//! untouched regions were compiled with aggregation and whose patched
//! regions were not still returns the correct next hop for every address.

use core::fmt;

use poptrie_bitops::Bits;
use poptrie_rib::{NextHop, Prefix, PrefixError, RadixTree, NO_ROUTE};

use poptrie_rib::radix::Node as RadixNode;

use crate::builder::{
    alloc_nodes, compute_chunk, fill_node, install_leaves, place_node, release_leaves, Builder,
};
use crate::config::PoptrieConfig;
use crate::node::{Node24, NodeRepr};
use crate::shared_leaves::LeafStoreHandle;
use crate::trie::{Poptrie, DIRECT_LEAF_BIT};

/// A rejected FIB mutation. Every [`Fib`] mutation returns
/// `Result<Applied, UpdateError>` — there are no silent re-masks, reserved
/// sentinel panics, or boolean half-answers on the mutation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum UpdateError {
    /// The prefix length exceeds the key width (raw announce path).
    PrefixTooLong {
        /// The requested prefix length.
        len: u8,
        /// The key width in bits.
        width: u32,
    },
    /// The address has host bits set below the prefix length (raw
    /// announce path). [`Prefix::new`] would silently mask these away and
    /// land the update on a *different* prefix than the caller named, so
    /// the wire-format entry points reject instead.
    NonCanonical {
        /// The requested prefix length.
        len: u8,
    },
    /// The next hop is the reserved no-route sentinel
    /// ([`NO_ROUTE`], 0). Valid next hops are `1..=65535`.
    ReservedNextHop,
    /// The node arena reached the 2^31-slot index space that the
    /// direct-entry tag bit leaves available; the update cannot allocate.
    CapacityExhausted {
        /// Slots currently backing the node arena.
        nodes: usize,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::PrefixTooLong { len, width } => {
                write!(f, "prefix length {len} exceeds key width {width}")
            }
            UpdateError::NonCanonical { len } => {
                write!(f, "address has host bits set below prefix length {len}")
            }
            UpdateError::ReservedNextHop => {
                write!(f, "next hop 0 is the reserved no-route sentinel")
            }
            UpdateError::CapacityExhausted { nodes } => {
                write!(f, "node arena ({nodes} slots) reached the 2^31 index space")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<PrefixError> for UpdateError {
    fn from(e: PrefixError) -> Self {
        match e {
            PrefixError::TooLong { len, width } => UpdateError::PrefixTooLong { len, width },
            PrefixError::NonCanonical { len } => UpdateError::NonCanonical { len },
        }
    }
}

/// What a successful [`Fib`] mutation did to the RIB.
///
/// The FIB side needs no reporting: after `Ok(_)` the compiled structure
/// is exactly consistent with the RIB. The distinction that matters to
/// callers (BGP speakers counting effective updates, oracles mirroring the
/// stream) is whether the RIB *changed* — [`Applied::changed`] — and what
/// was there before — [`Applied::previous`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// The prefix was not present; the route was added.
    Inserted,
    /// The prefix was present with a different next hop (the payload),
    /// which was replaced.
    Replaced(NextHop),
    /// The prefix was already present with this exact next hop: nothing
    /// changed, nothing was patched, and [`UpdateStats::updates`] did not
    /// move.
    Unchanged(NextHop),
    /// The prefix was present (payload: its next hop) and was withdrawn.
    Withdrawn(NextHop),
    /// A withdraw for a prefix that was not present: nothing changed.
    Absent,
    /// An explicit [`Fib::patch`]: the compiled structure was re-derived
    /// from the RIB for the prefix's range, whatever it contained.
    Refreshed,
}

impl Applied {
    /// The next hop the prefix mapped to before the mutation, if any.
    pub fn previous(&self) -> Option<NextHop> {
        match *self {
            Applied::Replaced(nh) | Applied::Unchanged(nh) | Applied::Withdrawn(nh) => Some(nh),
            Applied::Inserted | Applied::Absent | Applied::Refreshed => None,
        }
    }

    /// Whether the mutation changed the RIB (an *effective* update in the
    /// §4.9 sense; re-announcements and absent withdraws are not).
    pub fn changed(&self) -> bool {
        matches!(
            self,
            Applied::Inserted | Applied::Replaced(_) | Applied::Withdrawn(_)
        )
    }
}

/// How [`Fib`] repairs the Poptrie after a route change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateStrategy {
    /// The §3.5 approach: walk the affected subtree and *reuse* every node
    /// whose child-type `vector` is unchanged, reallocating only the leaf
    /// blocks (and subtrees) that actually changed. A typical BGP path
    /// change touches one leaf block.
    #[default]
    NodeRefresh,
    /// Tear down and recompile the whole subtree hanging off the affected
    /// direct slot. Simpler and still microsecond-scale; kept for the
    /// update-strategy ablation bench.
    SubtreeRebuild,
}

/// Counters describing incremental-update work, in the units of §4.9
/// ("the average number of replacements for the top-level array …, the
/// leaf node, and the internal node, per update").
///
/// The allocated/freed pairs account for the §3.5 patch discipline: an
/// update tears down the affected part of the structure (freeing slots
/// back to the buddy allocator) and compiles a replacement (allocating
/// slots), so under steady churn each `*_allocated` counter tracks its
/// `*_freed` twin and the gap between them is the structure's net growth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UpdateStats {
    /// Route updates applied (inserts + removes that changed the RIB).
    /// Re-announcements of an unchanged next hop do not count.
    pub updates: u64,
    /// Direct-pointing (top-level array) entries rewritten — §4.9's
    /// "replacements for the top-level array". A prefix no longer than
    /// `s` covers `2^(s - len)` slots; a longer prefix covers one.
    pub direct_replacements: u64,
    /// Internal nodes newly allocated. Under [`UpdateStrategy::NodeRefresh`]
    /// this stays near zero for BGP-style path changes: §3.5 reuses every
    /// node whose child-type `vector` is unchanged.
    pub nodes_allocated: u64,
    /// Internal nodes freed back to the buddy allocator.
    pub nodes_freed: u64,
    /// Leaves newly allocated. The §4.9 common case: a path change
    /// replaces one leaf block and nothing else.
    pub leaves_allocated: u64,
    /// Leaves freed back to the buddy allocator.
    pub leaves_freed: u64,
}

impl UpdateStats {
    /// The work done since `earlier`, field-wise. All fields are
    /// monotonic, so this is exact for any two snapshots of the same
    /// [`Fib`] taken in order.
    pub fn delta_since(&self, earlier: UpdateStats) -> UpdateStats {
        UpdateStats {
            updates: self.updates - earlier.updates,
            direct_replacements: self.direct_replacements - earlier.direct_replacements,
            nodes_allocated: self.nodes_allocated - earlier.nodes_allocated,
            nodes_freed: self.nodes_freed - earlier.nodes_freed,
            leaves_allocated: self.leaves_allocated - earlier.leaves_allocated,
            leaves_freed: self.leaves_freed - earlier.leaves_freed,
        }
    }

    /// Render as a flat JSON object (stable field order). Available
    /// without the `serde` feature so offline builds can still emit
    /// machine-readable stats.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"updates\": {}, \"direct_replacements\": {}, \"nodes_allocated\": {}, \
             \"nodes_freed\": {}, \"leaves_allocated\": {}, \"leaves_freed\": {} }}",
            self.updates,
            self.direct_replacements,
            self.nodes_allocated,
            self.nodes_freed,
            self.leaves_allocated,
            self.leaves_freed,
        )
    }
}

/// A RIB + Poptrie pair with incremental update.
///
/// ```
/// use poptrie::{Fib, PoptrieConfig};
///
/// let cfg = PoptrieConfig::new().direct_bits(18).build()?;
/// let mut fib: Fib<u32> = Fib::with_config(cfg);
/// fib.insert("10.0.0.0/8".parse().unwrap(), 1)?;
/// fib.insert("10.1.0.0/16".parse().unwrap(), 2)?;
/// assert_eq!(fib.lookup(0x0A01_0001), Some(2));
/// fib.remove("10.1.0.0/16".parse().unwrap())?;
/// assert_eq!(fib.lookup(0x0A01_0001), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fib<K: Bits> {
    rib: RadixTree<K, NextHop>,
    trie: Poptrie<K>,
    stats: UpdateStats,
    strategy: UpdateStrategy,
}

impl<K: Bits> Fib<K> {
    /// An empty FIB shaped by `config`.
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS` — the one rule a
    /// key-width-agnostic [`PoptrieConfig`] cannot check itself.
    pub fn with_config(config: PoptrieConfig) -> Self {
        Self::compile(RadixTree::new(), config)
    }

    /// Compile an initial FIB from an existing RIB (full build, §3's
    /// route aggregation applied per `config.aggregate`), then serve
    /// incremental updates with `config.strategy`.
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS`.
    pub fn compile(rib: RadixTree<K, NextHop>, config: PoptrieConfig) -> Self {
        let trie = Builder::from_config(&config).build(&rib);
        Fib {
            rib,
            trie,
            stats: UpdateStats::default(),
            strategy: config.strategy,
        }
    }

    /// An empty FIB shaped by `config` whose leaves resolve out of a
    /// shared VRF-group arena ([`LeafStoreHandle`]). See
    /// [`Fib::compile_shared`].
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS`.
    pub fn with_config_shared(config: PoptrieConfig, leaves: LeafStoreHandle) -> Self {
        Self::compile_shared(RadixTree::new(), config, leaves)
    }

    /// Compile an initial FIB from an existing RIB with its leaf blocks
    /// interned into a shared VRF-group arena: byte-identical blocks
    /// across every table holding a handle to the same store occupy one
    /// extent. Node arrays and the direct table stay private to this
    /// table, so update isolation and snapshot cost are unchanged.
    ///
    /// A shared-mode FIB cannot be serialized
    /// ([`to_bytes`](crate::trie::PoptrieImpl::to_bytes) panics) and its
    /// [`Clone`] is a read-only alias: interned extents are refcounted by
    /// the *writer* side only, so exactly one clone may keep mutating.
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS`, or when the shared
    /// arena cannot fit the table's leaf blocks (a provisioning error).
    pub fn compile_shared(
        rib: RadixTree<K, NextHop>,
        config: PoptrieConfig,
        leaves: LeafStoreHandle,
    ) -> Self {
        let trie = Builder::from_config(&config)
            .shared_leaves(leaves)
            .build(&rib);
        Fib {
            rib,
            trie,
            stats: UpdateStats::default(),
            strategy: config.strategy,
        }
    }

    /// Select the incremental-update strategy (default:
    /// [`UpdateStrategy::NodeRefresh`], the §3.5 node-reuse scheme).
    pub fn set_update_strategy(&mut self, strategy: UpdateStrategy) {
        self.strategy = strategy;
    }

    /// The active incremental-update strategy.
    pub fn update_strategy(&self) -> UpdateStrategy {
        self.strategy
    }

    /// The compiled Poptrie (lookup structure).
    pub fn poptrie(&self) -> &Poptrie<K> {
        &self.trie
    }

    /// Force the batched-lookup dispatch tier of the compiled Poptrie
    /// (clamped to what the CPU supports); snapshots cloned from this
    /// FIB afterwards inherit it. See
    /// [`Poptrie::set_batch_backend`](crate::Poptrie::set_batch_backend).
    pub fn set_batch_backend(
        &mut self,
        backend: poptrie_bitops::BatchBackend,
    ) -> poptrie_bitops::BatchBackend {
        self.trie.set_batch_backend(backend)
    }

    /// The RIB.
    pub fn rib(&self) -> &RadixTree<K, NextHop> {
        &self.rib
    }

    /// Cumulative update-work counters.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Longest-prefix-match lookup on the compiled FIB.
    #[inline]
    pub fn lookup(&self, key: K) -> Option<NextHop> {
        self.trie.lookup(key)
    }

    /// Announce a route: insert (or replace) `prefix -> nh` and patch the
    /// FIB.
    ///
    /// A re-announcement of the prefix's current next hop is a no-op
    /// ([`Applied::Unchanged`]): the RIB is unchanged, nothing is patched,
    /// and [`UpdateStats::updates`] is not incremented (it counts only
    /// updates that changed the RIB).
    ///
    /// # Errors
    ///
    /// [`UpdateError::ReservedNextHop`] when `nh` is [`NO_ROUTE`] (0);
    /// [`UpdateError::CapacityExhausted`] when the node arena has no index
    /// space left. On error the FIB is untouched.
    pub fn insert(&mut self, prefix: Prefix<K>, nh: NextHop) -> Result<Applied, UpdateError> {
        if nh == NO_ROUTE {
            return Err(UpdateError::ReservedNextHop);
        }
        self.check_capacity()?;
        let old = self.rib.insert(prefix, nh);
        if old != Some(nh) {
            #[cfg(feature = "telemetry")]
            let (t0, before) = (poptrie_cycles::rdtsc_serialized(), self.stats);
            self.patch_range(prefix);
            self.stats.updates += 1;
            #[cfg(feature = "telemetry")]
            crate::telemetry::record_update(
                true,
                poptrie_cycles::rdtsc_serialized().wrapping_sub(t0),
                &self.stats.delta_since(before),
            );
        }
        Ok(match old {
            None => Applied::Inserted,
            Some(prev) if prev == nh => Applied::Unchanged(prev),
            Some(prev) => Applied::Replaced(prev),
        })
    }

    /// Announce a route from raw wire-format parts, validating them: the
    /// length must fit the key width and `addr` must be canonical (no host
    /// bits below `len`). Unlike [`Prefix::new`] — which silently masks —
    /// a malformed update is rejected with
    /// [`UpdateError::PrefixTooLong`] / [`UpdateError::NonCanonical`]
    /// instead of being applied to a different prefix than the peer named.
    pub fn announce(&mut self, addr: K, len: u8, nh: NextHop) -> Result<Applied, UpdateError> {
        let prefix = Prefix::try_new(addr, len)?;
        self.insert(prefix, nh)
    }

    /// Withdraw a route. [`Applied::Withdrawn`] carries the next hop it
    /// had; a withdraw of an absent prefix is [`Applied::Absent`] and
    /// changes nothing.
    ///
    /// # Errors
    ///
    /// [`UpdateError::CapacityExhausted`] when the node arena has no index
    /// space left (a withdraw can still allocate while repairing the
    /// affected subtree). On error the FIB is untouched.
    pub fn remove(&mut self, prefix: Prefix<K>) -> Result<Applied, UpdateError> {
        self.check_capacity()?;
        let Some(old) = self.rib.remove(prefix) else {
            return Ok(Applied::Absent);
        };
        #[cfg(feature = "telemetry")]
        let (t0, before) = (poptrie_cycles::rdtsc_serialized(), self.stats);
        self.patch_range(prefix);
        self.stats.updates += 1;
        #[cfg(feature = "telemetry")]
        crate::telemetry::record_update(
            false,
            poptrie_cycles::rdtsc_serialized().wrapping_sub(t0),
            &self.stats.delta_since(before),
        );
        Ok(Applied::Withdrawn(old))
    }

    /// Withdraw a route from raw wire-format parts, with the same
    /// validation as [`Fib::announce`].
    pub fn withdraw(&mut self, addr: K, len: u8) -> Result<Applied, UpdateError> {
        let prefix = Prefix::try_new(addr, len)?;
        self.remove(prefix)
    }

    /// Re-derive the compiled structure from the RIB for `prefix`'s
    /// range, whether or not the RIB holds that exact prefix. [`insert`]
    /// and [`remove`] call this internally; it is public for callers that
    /// mutate the RIB out of band (e.g. bulk-diff appliers) and then
    /// repair the FIB range by range.
    ///
    /// [`insert`]: Fib::insert
    /// [`remove`]: Fib::remove
    pub fn patch(&mut self, prefix: Prefix<K>) -> Result<Applied, UpdateError> {
        self.check_capacity()?;
        self.patch_range(prefix);
        Ok(Applied::Refreshed)
    }

    /// The conservative arena-space precheck behind
    /// [`UpdateError::CapacityExhausted`]: node indices share a `u32` with
    /// the [`DIRECT_LEAF_BIT`] tag, so the arena must stay below 2^31
    /// slots for any further allocation to be representable.
    fn check_capacity(&self) -> Result<(), UpdateError> {
        let nodes = self.trie.nodes.len();
        if nodes as u64 >= DIRECT_LEAF_BIT as u64 {
            return Err(UpdateError::CapacityExhausted { nodes });
        }
        Ok(())
    }

    /// Rebuild the whole FIB from the RIB (the paper's "compilation from
    /// scratch", Table 2's compilation-time column). A shared-mode table
    /// first releases every interned extent it references (the old trie's
    /// private storage dies with its `Vec`s, but shared-arena references
    /// are refcounted) and rebuilds against the same arena.
    pub fn rebuild(&mut self) {
        #[cfg(feature = "telemetry")]
        let t0 = poptrie_cycles::rdtsc_serialized();
        release_trie_shared_leaves(&mut self.trie);
        let mut b = Builder::new().direct_bits(self.trie.s).aggregate(false);
        if let Some(h) = self.trie.shared_leaves.clone() {
            b = b.shared_leaves(h);
        }
        self.trie = b.build(&self.rib);
        #[cfg(feature = "telemetry")]
        crate::telemetry::record_rebuild(poptrie_cycles::rdtsc_serialized().wrapping_sub(t0));
    }

    /// Patch the Poptrie after `prefix` changed in the RIB.
    fn patch_range(&mut self, prefix: Prefix<K>) {
        let s = self.trie.s as u32;
        let len = prefix.len() as u32;
        // Canonicalize defensively: a prefix with set bits below `len`
        // would make `extract(0, s)` land on the wrong direct slot and
        // refresh a range the route change never touched, leaving the
        // real range stale. `Prefix::new` masks at construction, so this
        // is belt-and-braces against any future constructor that forgets.
        let addr = prefix.addr().and(K::prefix_mask(len));
        debug_assert!(
            addr == prefix.addr(),
            "non-canonical prefix reached patch: {prefix:?}"
        );
        let prefix = Prefix::new(addr, len as u8);
        if s == 0 {
            // Without direct pointing the root subtree is the only
            // replaceable unit (the paper evaluates updates with s = 18).
            let before = snapshot(&self.trie);
            let old_root = self.trie.root;
            free_subtree(&mut self.trie, old_root);
            self.trie.node_buddy.free(old_root, 1);
            let mid = snapshot(&self.trie);
            let root = alloc_nodes(&mut self.trie, 1);
            self.trie.root = root;
            fill_node(&mut self.trie, root, self.rib.root(), NO_ROUTE);
            credit(&mut self.stats, before, mid, snapshot(&self.trie));
            return;
        }
        if len > s {
            self.refresh_direct_slot(prefix.addr().extract(0, s));
        } else {
            let lo = prefix.addr().extract(0, s);
            let count = 1u32 << (s - len);
            for di in lo..lo + count {
                self.refresh_direct_slot(di);
            }
        }
    }

    /// Repair the structure hanging off direct slot `di` from the RIB,
    /// reusing the existing node subtree where the strategy allows.
    fn refresh_direct_slot(&mut self, di: u32) {
        let s = self.trie.s as u32;
        let old = self.trie.direct[di as usize];
        let old_is_node = old & DIRECT_LEAF_BIT == 0;
        // Locate the radix node for the slot's s-bit path, tracking the
        // next hop inherited from shorter prefixes along the way.
        let path = K::from_high_bits(di, s);
        let mut cur = self.rib.root();
        let mut inherited = NO_ROUTE;
        let mut i = 0;
        while i < s {
            let Some(n) = cur else { break };
            inherited = n.value().copied().unwrap_or(inherited);
            cur = n.child(path.bit(i));
            i += 1;
        }
        let needs_node = i == s && cur.map(|n| n.has_children()).unwrap_or(false);
        let entry = match (old_is_node, needs_node) {
            (true, true) if self.strategy == UpdateStrategy::NodeRefresh => {
                // §3.5 node reuse: repair in place, keeping the index.
                refresh_node(&mut self.trie, &mut self.stats, old, cur, inherited);
                old
            }
            (_, true) => {
                if old_is_node {
                    teardown_slot(&mut self.trie, &mut self.stats, old);
                }
                let before = snapshot(&self.trie);
                let idx = alloc_nodes(&mut self.trie, 1);
                fill_node(&mut self.trie, idx, cur, inherited);
                credit_built(&mut self.stats, before, snapshot(&self.trie));
                idx
            }
            (_, false) => {
                if old_is_node {
                    teardown_slot(&mut self.trie, &mut self.stats, old);
                }
                let nh = match cur {
                    Some(n) if i == s => n.value().copied().unwrap_or(inherited),
                    _ => inherited,
                };
                DIRECT_LEAF_BIT | nh as u32
            }
        };
        if entry != old {
            self.trie.direct[di as usize] = entry;
            self.stats.direct_replacements += 1;
        }
    }
}

/// Free the node subtree a direct slot points at, including the node's
/// own single-slot block, crediting the freed work.
fn teardown_slot<K: Bits>(trie: &mut Poptrie<K>, stats: &mut UpdateStats, idx: u32) {
    let before = snapshot(trie);
    free_subtree(trie, idx);
    trie.node_buddy.free(idx, 1);
    credit_freed(stats, before, snapshot(trie));
}

/// The §3.5 refresh: recompute node `idx`'s contents from the RIB; when
/// its child-type `vector` is unchanged, keep the node and its child block
/// in place, replace the leaf block only if the leaves actually changed,
/// and recurse into the children. When the `vector` changed (a slot
/// flipped between leaf and internal), fall back to rebuilding the whole
/// subtree below `idx` — the node index itself is still preserved, so the
/// parent needs no update.
fn refresh_node<K: Bits>(
    trie: &mut Poptrie<K>,
    stats: &mut UpdateStats,
    idx: u32,
    radix: Option<&RadixNode<NextHop>>,
    inherited: NextHop,
) {
    let old: Node24 = trie.nodes[idx as usize];
    let spec = compute_chunk::<Node24>(radix, inherited);
    if spec.vector != old.vector {
        // Structure changed: rebuild this subtree in place.
        let before = snapshot(trie);
        free_subtree(trie, idx);
        credit_freed(stats, before, snapshot(trie));
        let before = snapshot(trie);
        place_node(trie, idx, spec);
        credit_built(stats, before, snapshot(trie));
        return;
    }
    // Same child structure: refresh leaves if they changed. With an
    // unchanged leafvec the old and new blocks have the same length, so
    // the content probe (against the shared store or the private array)
    // compares like for like.
    let old_leaf_count = old.leafvec.count_ones() as usize;
    let leaves_unchanged = spec.leafvec == old.leafvec
        && match &trie.shared_leaves {
            Some(h) => h.store().block_eq(old.base0, &spec.leaf_vals),
            None => {
                spec.leaf_vals
                    == trie.leaves[old.base0 as usize..old.base0 as usize + old_leaf_count]
            }
        };
    if !leaves_unchanged {
        if old_leaf_count > 0 {
            release_leaves(trie, old.base0, old_leaf_count as u32);
            stats.leaves_freed += old_leaf_count as u64;
        }
        let base0 = if spec.leaf_vals.is_empty() {
            0
        } else {
            stats.leaves_allocated += spec.leaf_vals.len() as u64;
            install_leaves(trie, &spec.leaf_vals)
        };
        let node = &mut trie.nodes[idx as usize];
        node.leafvec = spec.leafvec;
        node.base0 = base0;
    }
    // Recurse into the (unchanged set of) children.
    for (i, (cnode, cinh)) in spec.children.into_iter().enumerate() {
        refresh_node(trie, stats, old.base1 + i as u32, Some(cnode), cinh);
    }
}

fn credit_freed(stats: &mut UpdateStats, before: (usize, usize), after: (usize, usize)) {
    stats.nodes_freed += (before.0 - after.0) as u64;
    stats.leaves_freed += (before.1 - after.1) as u64;
}

fn credit_built(stats: &mut UpdateStats, before: (usize, usize), after: (usize, usize)) {
    stats.nodes_allocated += (after.0 - before.0) as u64;
    stats.leaves_allocated += (after.1 - before.1) as u64;
}

/// (inodes, leaves) snapshot for stats accounting.
fn snapshot<K: Bits>(trie: &Poptrie<K>) -> (usize, usize) {
    (trie.inode_count, trie.leaf_count)
}

/// Attribute counter movement to freed (before → mid, while the old
/// subtree is torn down) and built (mid → after, while the new subtree is
/// compiled) work.
fn credit(
    stats: &mut UpdateStats,
    before: (usize, usize),
    mid: (usize, usize),
    after: (usize, usize),
) {
    stats.nodes_freed += (before.0 - mid.0) as u64;
    stats.leaves_freed += (before.1 - mid.1) as u64;
    stats.nodes_allocated += (after.0 - mid.0) as u64;
    stats.leaves_allocated += (after.1 - mid.1) as u64;
}

/// Recursively free the child and leaf blocks under node `idx` and
/// decrement the live counters for `idx` itself. The block *containing*
/// `idx` must be freed by the caller (it belongs to the parent).
pub(crate) fn free_subtree<K: Bits, N: NodeRepr>(
    trie: &mut crate::trie::PoptrieImpl<K, N>,
    idx: u32,
) {
    let node = trie.nodes[idx as usize];
    let nchildren = node.vector().count_ones();
    for i in 0..nchildren {
        free_subtree(trie, node.base1() + i);
    }
    if nchildren > 0 {
        trie.node_buddy.free(node.base1(), nchildren);
    }
    let nleaves = node.leaf_count();
    if nleaves > 0 {
        release_leaves(trie, node.base0(), nleaves);
    }
    trie.inode_count -= 1;
}

/// Drop every shared-arena leaf reference a trie holds, leaving it with
/// `leaf_count == 0`. No-op for private tables. Called before a trie is
/// discarded wholesale ([`Fib::rebuild`]): private storage dies with its
/// `Vec`s, but interned extents are refcounted and must be released.
pub(crate) fn release_trie_shared_leaves<K: Bits, N: NodeRepr>(
    trie: &mut crate::trie::PoptrieImpl<K, N>,
) {
    if trie.shared_leaves.is_none() {
        return;
    }
    // Direct slots own disjoint subtrees (the builder and the patcher
    // never share nodes across slots), so each root is visited once.
    let roots: Vec<u32> = if trie.s == 0 {
        vec![trie.root]
    } else {
        trie.direct
            .iter()
            .copied()
            .filter(|e| e & DIRECT_LEAF_BIT == 0)
            .collect()
    };
    for r in roots {
        release_subtree_leaves(trie, r);
    }
    debug_assert_eq!(trie.leaf_count, 0, "leaf refs remain after release");
}

/// Release the leaf blocks of the subtree rooted at `idx` (shared mode),
/// touching no node storage.
fn release_subtree_leaves<K: Bits, N: NodeRepr>(
    trie: &mut crate::trie::PoptrieImpl<K, N>,
    idx: u32,
) {
    let node = trie.nodes[idx as usize];
    for i in 0..node.vector().count_ones() {
        release_subtree_leaves(trie, node.base1() + i);
    }
    let nleaves = node.leaf_count();
    if nleaves > 0 {
        release_leaves(trie, node.base0(), nleaves);
    }
}
