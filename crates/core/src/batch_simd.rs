//! Vectorized batched descent kernels (x86-64 only).
//!
//! These are the AVX2 / AVX-512 tiers of the dispatch ladder described in
//! [`poptrie_bitops::simd`]. They differ from the scalar walker in
//! `trie.rs` in three ways:
//!
//! * **Four times the interleave.** A SIMD chunk carries [`SIMD_LANES`]
//!   (32) keys instead of [`BATCH_LANES`] (8). The batched mode's
//!   speedup comes from the number of independent miss chains in flight;
//!   the gather below fetches a whole 8-lane group's node words in one
//!   instruction, so widening the chunk costs one gather per extra group
//!   instead of quadrupling the scalar bookkeeping. (Widths measured on
//!   an L3-resident Tier-1 table: 8 lanes lose to the scalar walker,
//!   16 lanes tie it, 32 lanes beat it.)
//! * **Gathered critical words.** Each round fetches the `vector` word of
//!   every live lane with a masked 64-bit gather (`vpgatherqq`) — one per
//!   8-lane group on AVX-512, two 4-lane halves on AVX2. Masked-off lanes
//!   perform no memory access at all (hardware-suppressed). `vector`
//!   sits at byte offset 0 of both node layouts (pinned by the
//!   `NodeRepr::AUX_BYTES`/`BASES_BYTES` layout tests), so the gather
//!   both delivers the word that decides the lane's fate *and* warms the
//!   node's cache line for the scalar `base0`/`base1`/`leafvec` reads
//!   that follow. Gathering those secondary words too was measured
//!   slower: three dependent gathers per round serialize the very
//!   miss-parallelism the batch exists to create, while scalar reads of
//!   an L1-warm line are nearly free.
//! * **Branchless lane retirement.** Both candidate successors — the
//!   child index `base1 + rank1(vector, v) - 1` and the leaf index
//!   `base0 + leaf_rank(v) - 1` — are computed unconditionally with
//!   wrapping arithmetic, a conditional move selects the real one, and
//!   retirement is pure mask arithmetic (`live &= !retire`,
//!   `leaf_mask |= retire`). The scalar walker branches on
//!   `vector & (1 << v)`, which on random traffic mispredicts roughly
//!   once per descending key.
//!
//! Memory-safety of the gather: every live lane's index satisfies the
//! structural invariant of [`PoptrieImpl::check_invariants`] — the same
//! invariant the scalar path's unchecked indexing relies on — and dead
//! lanes are suppressed by the mask. Semantics are bit-identical to the
//! scalar walker per key; the differential fuzz in
//! `tests/cross_validation.rs` runs all tiers against each other on every
//! churn-fuzzer table.

use poptrie_bitops::{prefetch_read, rank1, simd::x86, Bits};
use poptrie_rib::NextHop;

use crate::node::NodeRepr;
use crate::trie::{PoptrieImpl, BATCH_LANES};

/// Keys interleaved per SIMD kernel invocation: four gather groups of
/// [`BATCH_LANES`]. Four times the scalar walker's width, so the SIMD
/// tiers keep up to 32 independent miss chains in flight. Must not
/// exceed 32: lane state is tracked in `u32` masks.
pub(crate) const SIMD_LANES: usize = 4 * BATCH_LANES;

/// Per-lane branchless step shared by the AVX2 and AVX-512 kernels: takes
/// lane `i`'s gathered `vector` word and its (gather-warmed) node,
/// advances the lane with a conditional move, and retires it into
/// `leaf_mask` when its slot is a leaf. The "wrong" candidate index is
/// computed with wrapping arithmetic and discarded by the select; the
/// prefetch target is selected the same way (prefetching never faults, so
/// a wrapped junk address on the discarded side would merely waste a
/// hint — and the select drops it).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn step_lane<K: Bits, N: NodeRepr>(
    key: K,
    i: usize,
    vector: u64,
    node: &N,
    index: &mut [u32; SIMD_LANES],
    offset: &mut [u32; SIMD_LANES],
    leaf: &mut [u32; SIMD_LANES],
    live: &mut u32,
    leaf_mask: &mut u32,
    nodes_ptr: *const N,
    leaves_ptr: *const NextHop,
    #[allow(unused_variables)] s: u32,
) {
    let v = key.extract(offset[i], 6);
    let internal = ((vector >> v) & 1) as u32;
    let next = node.base1().wrapping_add(rank1(vector, v)).wrapping_sub(1);
    let li = node.base0().wrapping_add(node.leaf_rank(v)).wrapping_sub(1);
    index[i] = if internal != 0 { next } else { index[i] };
    offset[i] += 6;
    leaf[i] = li;
    let retire = (internal ^ 1) << i;
    *live &= !retire;
    *leaf_mask |= retire;
    debug_assert!(
        internal == 0 || offset[i] < K::BITS,
        "traversal ran past the key width; corrupt trie"
    );
    #[cfg(feature = "telemetry")]
    if internal == 0 {
        crate::telemetry::record_leaf_resolution(
            true,
            (offset[i] - 6 - s) / 6 + 1,
            N::COMPRESSES_LEAVES,
        );
    }
    #[cfg(feature = "trace")]
    if internal == 0 {
        crate::phase::record_phase_descent((offset[i] - 6 - s) / 6 + 1);
    }
    let next_line = (nodes_ptr as *const u8).wrapping_add(next as usize * N::SIZE);
    let leaf_line =
        (leaves_ptr as *const u8).wrapping_add(li as usize * core::mem::size_of::<NextHop>());
    prefetch_read(if internal != 0 { next_line } else { leaf_line });
}

/// The shared kernel body. `WIDE` selects the gather shape per 8-lane
/// group: one AVX-512 `vpgatherqq` (`true`) or two AVX2 4-lane halves
/// (`false`). `#[inline(always)]` so each monomorphization inherits the
/// caller's `#[target_feature]` set.
///
/// # Safety
///
/// The caller must hold the target features its `WIDE` instantiation
/// uses: AVX2 + popcnt, plus AVX-512F when `WIDE`.
#[inline(always)]
unsafe fn walk<K: Bits, N: NodeRepr, const WIDE: bool>(
    t: &PoptrieImpl<K, N>,
    keys: &[K],
    out: &mut [NextHop],
) {
    let n = keys.len();
    debug_assert!(n <= SIMD_LANES && n == out.len());
    #[cfg(feature = "telemetry")]
    {
        // Account the wide chunk as BATCH_LANES-sized chunk equivalents
        // so the counters (and the lane-fill histogram buckets, sized
        // 0..=BATCH_LANES) reconcile identically on every dispatch tier.
        let mut left = n;
        loop {
            crate::telemetry::record_batch_call(left.min(BATCH_LANES));
            if left <= BATCH_LANES {
                break;
            }
            left -= BATCH_LANES;
        }
    }
    let mut index = [0u32; SIMD_LANES];
    let mut offset = [0u32; SIMD_LANES];
    let mut leaf = [0u32; SIMD_LANES];
    // Round 0 (the direct-pointing stage) is shared with the scalar
    // walker: 16 independent prefetched loads beat a u32 gather here
    // because nothing downstream consumes the entries as a vector.
    let mut live = t.direct_round(keys, out, &mut index, &mut offset);
    let mut leaf_mask = 0u32;

    let nodes_ptr = t.nodes.as_ptr();
    // Private leaf array, or the shared slab in VRF mode — either way a
    // flat `u16` index space the structural invariant keeps us inside.
    let leaves_ptr = t.leaf_base_ptr();
    let base = nodes_ptr as *const u8;
    let mut vecw = [0u64; SIMD_LANES];
    while live != 0 || leaf_mask != 0 {
        let mut m = leaf_mask;
        leaf_mask = 0;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let li = leaf[i] as usize;
            debug_assert!(li < t.leaf_slots());
            // SAFETY: `li` is `base0 + leaf_rank(v) - 1` of a live node,
            // in bounds by the structural invariant.
            out[i] = *leaves_ptr.add(li);
        }
        if live == 0 {
            continue;
        }
        // Gather the `vector` word of every live lane, one 8-lane group
        // at a time. Dead lanes' offsets are computed but masked off, so
        // they cost nothing and access nothing.
        let mut g = 0;
        while g < SIMD_LANES {
            let gm = (live >> g) & 0xFF;
            if gm != 0 {
                let mut boff = [0i64; BATCH_LANES];
                for (j, b) in boff.iter_mut().enumerate() {
                    *b = index[g + j] as i64 * N::SIZE as i64;
                }
                // SAFETY: live lanes hold valid node indices (structural
                // invariant); `vector` is the u64 at node offset 0.
                let got = if WIDE {
                    x86::gather_u64x8(base, boff, gm)
                } else {
                    let lo: [i64; 4] = boff[..4].try_into().unwrap();
                    let hi: [i64; 4] = boff[4..].try_into().unwrap();
                    let l = x86::gather_u64x4(base, lo, gm & 0xF);
                    let h = x86::gather_u64x4(base, hi, gm >> 4);
                    [l[0], l[1], l[2], l[3], h[0], h[1], h[2], h[3]]
                };
                vecw[g..g + BATCH_LANES].copy_from_slice(&got);
            }
            g += BATCH_LANES;
        }
        let mut m = live;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            // SAFETY: live lanes hold valid node indices; the node's line
            // is warm from the gather above.
            let node = &*nodes_ptr.add(index[i] as usize);
            step_lane::<K, N>(
                keys[i],
                i,
                vecw[i],
                node,
                &mut index,
                &mut offset,
                &mut leaf,
                &mut live,
                &mut leaf_mask,
                nodes_ptr,
                leaves_ptr,
                t.s as u32,
            );
        }
    }
}

impl<K: Bits, N: NodeRepr> PoptrieImpl<K, N> {
    /// The AVX2 tier of [`PoptrieImpl::lookup_batch`]: one interleaved
    /// pass over at most [`SIMD_LANES`] keys, gathering node vectors four
    /// lanes at a time.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 + popcnt at dispatch time
    /// ([`poptrie_bitops::BatchBackend::is_available`]).
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub(crate) unsafe fn lookup_batch_chunk_avx2(&self, keys: &[K], out: &mut [NextHop]) {
        walk::<K, N, false>(self, keys, out)
    }

    /// The AVX-512 tier: as [`PoptrieImpl::lookup_batch_chunk_avx2`], but
    /// each 8-lane group's vectors come back in a single masked gather
    /// with the group's `live` bits used directly as the `k`-mask.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX-512F + AVX2 + popcnt at dispatch
    /// time ([`poptrie_bitops::BatchBackend::is_available`]).
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "popcnt")]
    pub(crate) unsafe fn lookup_batch_chunk_avx512(&self, keys: &[K], out: &mut [NextHop]) {
        walk::<K, N, true>(self, keys, out)
    }
}
