//! Binary serialization of a compiled Poptrie.
//!
//! A compiled FIB is three flat arrays plus a few scalars, so it
//! serializes naturally: routers can compile once (or receive a compiled
//! FIB from a route server) and map it in at startup instead of paying
//! the §3.5 compilation cost. The format is explicit little-endian with a
//! magic, a version, the key width and node layout (so a `Poptrie<u32>`
//! blob cannot be loaded as `Poptrie<u128>` or `PoptrieBasic`), and an
//! FNV-1a checksum over the payload.
//!
//! A deserialized structure is a fully functional *read-only* FIB: the
//! buddy-allocator bookkeeping that incremental update relies on is not
//! part of the format (block provenance is not recoverable from the
//! arrays), so route changes require recompiling through
//! [`Fib`](crate::Fib). Lookup behaviour round-trips exactly — see the
//! `ranges()`-equality tests.
//!
//! ```
//! use poptrie::{Poptrie, RadixTree};
//!
//! let mut rib: RadixTree<u32, u16> = RadixTree::new();
//! rib.insert("10.0.0.0/8".parse().unwrap(), 1);
//! let fib: Poptrie<u32> = Poptrie::builder().build(&rib);
//! let bytes = fib.to_bytes();
//! let loaded: Poptrie<u32> = Poptrie::from_bytes(&bytes).unwrap();
//! assert_eq!(loaded.lookup(0x0A00_0001), Some(1));
//! ```

use poptrie_bitops::Bits;
use poptrie_buddy::Buddy;
use poptrie_rib::NextHop;

use crate::node::NodeRepr;
use crate::trie::PoptrieImpl;

/// Format magic: "PTRI".
const MAGIC: [u8; 4] = *b"PTRI";
/// Format version.
const VERSION: u16 = 1;

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// Not a Poptrie blob (bad magic) or newer format version.
    BadHeader(String),
    /// The blob is for a different key width or node layout.
    WrongShape {
        /// What the blob holds.
        found: String,
        /// What the caller asked for.
        expected: String,
    },
    /// The blob is shorter than its own length fields claim.
    Truncated,
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// The arrays fail structural validation.
    Corrupt(String),
}

impl core::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SerializeError::BadHeader(m) => write!(f, "bad header: {m}"),
            SerializeError::WrongShape { found, expected } => {
                write!(f, "blob holds {found}, expected {expected}")
            }
            SerializeError::Truncated => write!(f, "blob truncated"),
            SerializeError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            SerializeError::Corrupt(m) => write!(f, "structural validation failed: {m}"),
        }
    }
}

impl std::error::Error for SerializeError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerializeError> {
        if self.data.len() - self.pos < n {
            return Err(SerializeError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, SerializeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SerializeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, SerializeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, SerializeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

impl<K: Bits, N: NodeRepr> PoptrieImpl<K, N> {
    /// Serialize the compiled FIB to a self-describing binary blob.
    ///
    /// # Panics
    ///
    /// Panics for a shared-leaves (VRF-group) table: its leaf extents live
    /// in an arena shared with other tenants and are meaningless outside
    /// the group. Serialize a private recompile of the same RIB instead.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(
            self.shared_leaves.is_none(),
            "cannot serialize a shared-leaves (VRF) table: leaf offsets \
             reference a shared arena; recompile privately to serialize"
        );
        let mut payload = Writer { out: Vec::new() };
        payload.u8(self.s);
        payload.u32(self.root);
        payload.u64(self.inode_count as u64);
        payload.u64(self.leaf_count as u64);
        payload.u64(self.direct.len() as u64);
        for &d in &self.direct {
            payload.u32(d);
        }
        // Nodes as raw fields through the trait (portable across layouts).
        payload.u64(self.nodes.len() as u64);
        for n in &self.nodes {
            payload.u64(n.vector());
            if N::COMPRESSES_LEAVES {
                payload.u64(node_leafvec(n));
            }
            payload.u32(n.base0());
            payload.u32(n.base1());
        }
        payload.u64(self.leaves.len() as u64);
        for &l in &self.leaves {
            payload.u16(l);
        }

        let mut out = Writer { out: Vec::new() };
        out.out.extend_from_slice(&MAGIC);
        out.u16(VERSION);
        out.u16(K::BITS as u16);
        out.u8(if N::COMPRESSES_LEAVES { 24 } else { 16 });
        out.u8(0); // reserved
        out.u64(fnv1a(&payload.out));
        out.out.extend_from_slice(&payload.out);
        out.out
    }

    /// Deserialize a blob produced by [`PoptrieImpl::to_bytes`] for the
    /// same key width and node layout. The result is validated with
    /// [`PoptrieImpl::check_invariants`] before being returned.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SerializeError> {
        let mut r = Reader {
            data: bytes,
            pos: 0,
        };
        if r.take(4)? != MAGIC {
            return Err(SerializeError::BadHeader("bad magic".into()));
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(SerializeError::BadHeader(format!(
                "unsupported version {version}"
            )));
        }
        let key_bits = r.u16()?;
        let node_size = r.u8()?;
        let _reserved = r.u8()?;
        let expected_size = if N::COMPRESSES_LEAVES { 24 } else { 16 };
        if key_bits as u32 != K::BITS || node_size != expected_size {
            return Err(SerializeError::WrongShape {
                found: format!("{key_bits}-bit keys, {node_size}-byte nodes"),
                expected: format!("{}-bit keys, {expected_size}-byte nodes", K::BITS),
            });
        }
        let checksum = r.u64()?;
        if fnv1a(&bytes[r.pos..]) != checksum {
            return Err(SerializeError::ChecksumMismatch);
        }

        let s = r.u8()?;
        let root = r.u32()?;
        let inode_count = r.u64()? as usize;
        let leaf_count = r.u64()? as usize;
        // Bound every element count by the bytes actually present before
        // allocating, so a crafted header cannot demand a huge buffer.
        let bounded =
            |count: u64, elem_bytes: usize, r: &Reader<'_>| -> Result<usize, SerializeError> {
                let remaining = r.data.len() - r.pos;
                if (count as u128) * (elem_bytes as u128) > remaining as u128 {
                    return Err(SerializeError::Truncated);
                }
                Ok(count as usize)
            };
        let ndirect = {
            let c = r.u64()?;
            bounded(c, 4, &r)?
        };
        let mut direct = Vec::with_capacity(ndirect);
        for _ in 0..ndirect {
            direct.push(r.u32()?);
        }
        let node_bytes = if N::COMPRESSES_LEAVES { 24 } else { 16 };
        let nnodes = {
            let c = r.u64()?;
            bounded(c, node_bytes, &r)?
        };
        let mut nodes = Vec::with_capacity(nnodes);
        for _ in 0..nnodes {
            let vector = r.u64()?;
            let leafvec = if N::COMPRESSES_LEAVES { r.u64()? } else { 0 };
            let base0 = r.u32()?;
            let base1 = r.u32()?;
            nodes.push(N::new(vector, leafvec, base0, base1));
        }
        let nleaves = {
            let c = r.u64()?;
            bounded(c, 2, &r)?
        };
        let mut leaves: Vec<NextHop> = Vec::with_capacity(nleaves);
        for _ in 0..nleaves {
            let b = r.take(2)?;
            leaves.push(u16::from_le_bytes([b[0], b[1]]));
        }

        // Reconstruct inert allocators covering the arrays: a loaded FIB
        // is read-only (see the module docs), so only capacity matters.
        let node_buddy = sized_buddy(nodes.len());
        let leaf_buddy = sized_buddy(leaves.len());
        let trie = PoptrieImpl {
            direct,
            nodes,
            leaves,
            node_buddy,
            leaf_buddy,
            root,
            inode_count,
            leaf_count,
            s,
            // Serialized tables are always private-leaf (asserted above).
            shared_leaves: None,
            // Serialized images carry no backend: the tier is a property
            // of the loading host's CPU, re-detected at every load.
            backend: poptrie_bitops::BatchBackend::detect(),
            _key: core::marker::PhantomData,
        };
        trie.check_invariants().map_err(SerializeError::Corrupt)?;
        Ok(trie)
    }
}

/// An allocator whose whole capacity is marked in use.
fn sized_buddy(len: usize) -> Buddy {
    let mut b = Buddy::new();
    if len > 0 {
        b.alloc(len as u32);
    }
    b
}

/// Read a node's leafvec through its concrete layout. `NodeRepr` does not
/// expose the raw leafvec (the 16-byte layout has none), so recover it
/// from `leaf_rank`: bit `v` of the leafvec is set iff the rank increases
/// at `v`.
pub(crate) fn node_leafvec<N: NodeRepr>(n: &N) -> u64 {
    let mut leafvec = 0u64;
    let mut prev = 0;
    for v in 0..64 {
        let r = n.leaf_rank(v);
        if r > prev {
            leafvec |= 1 << v;
        }
        prev = r;
    }
    leafvec
}
