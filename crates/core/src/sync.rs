//! Concurrent FIB access (§3.5's update model).
//!
//! The paper requires that "blocking the read access to Poptrie using
//! write lock is not acceptable": the forwarding path keeps looking up the
//! current FIB while an update constructs the replacement, and the switch
//! is a single atomic operation. This module reproduces that model with a
//! read-copy-update cell:
//!
//! * **Readers** ([`SharedFib::lookup`]) grab an [`Arc`] snapshot of the
//!   current `Poptrie` and run the lookup against it — updates never
//!   invalidate a snapshot a reader holds.
//! * **Writers** ([`SharedFib::insert`] / [`SharedFib::remove`]) serialize
//!   on a mutex (the paper likewise assumes "the single-threaded update
//!   operation"), apply the incremental update of §3.5 to a private
//!   [`Fib`], and publish a new snapshot by swapping the `Arc`. The old
//!   snapshot is freed when its last reader drops it.
//!
//! The paper swaps `base1`/`base0` fields in place with atomic stores; in
//! Rust that fine-grained scheme would require pervasive `unsafe` shared
//! mutation of the node arrays. Publishing a whole-structure snapshot has
//! identical reader-visible semantics (readers always see a complete,
//! consistent FIB, updates never block readers for the duration of a
//! rebuild) at the cost of one `memcpy` of the compact arrays per update
//! batch — a few hundred microseconds for a full BGP table, amortizable
//! over batches via [`SharedFib::update_batch`]. Earlier revisions used
//! epoch-based reclamation (`crossbeam-epoch`) for strictly wait-free
//! reads; the cell now swaps an `Arc` under a [`RwLock`] whose read-side
//! critical section is a single reference-count increment, so the
//! workspace builds with no external dependencies and readers still never
//! wait for a FIB rebuild. DESIGN.md records both substitutions.

use poptrie_bitops::Bits;
use poptrie_rib::{NextHop, Prefix, RadixTree};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use crate::trie::Poptrie;
use crate::update::{Fib, UpdateStats};

/// An RCU cell: cheap snapshot reads of a heap value that is replaced
/// wholesale by writers.
///
/// Readers never hold a lock while using the value — [`RcuCell::read`]
/// and [`RcuCell::snapshot`] clone the inner [`Arc`] (one atomic
/// increment under a briefly-held read lock) and the caller works on
/// that snapshot for as long as it likes. Writers swap in a new `Arc`;
/// the old value is dropped when its last snapshot goes away.
pub struct RcuCell<T> {
    ptr: RwLock<Arc<T>>,
}

impl<T> core::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RcuCell").finish_non_exhaustive()
    }
}

impl<T> RcuCell<T> {
    /// Create a cell holding `value`.
    pub fn new(value: T) -> Self {
        RcuCell {
            ptr: RwLock::new(Arc::new(value)),
        }
    }

    /// A shared snapshot of the current value. The snapshot stays valid
    /// (and unchanged) even if writers replace the cell's value
    /// afterwards.
    #[inline]
    pub fn snapshot(&self) -> Arc<T> {
        // Poisoning cannot leave the Arc in a torn state (replacing it is
        // a single pointer swap), so a panic elsewhere must not take the
        // forwarding path down with it.
        match self.ptr.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Run `f` against the current value. The value is guaranteed to stay
    /// alive for the duration of the call even if a writer replaces it
    /// concurrently.
    #[inline]
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.snapshot())
    }

    /// Atomically publish `value`; the previous value is freed once the
    /// last outstanding snapshot drops.
    ///
    /// The write lock is held only for the pointer swap itself. The old
    /// `Arc` is moved out of the critical section and dropped after the
    /// guard is released: when the cell holds the last reference to a
    /// full BGP-table Poptrie, its deallocation takes long enough that
    /// dropping it under the lock would stall every reader for the
    /// duration.
    pub fn replace(&self, value: T) {
        let next = Arc::new(value);
        let old = {
            let mut g = match self.ptr.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            core::mem::replace(&mut *g, next)
        };
        #[cfg(feature = "telemetry")]
        crate::telemetry::record_rcu_publish(Arc::strong_count(&old) as u64 - 1);
        drop(old);
    }

    /// Number of snapshots of the *current* value held outside the cell
    /// — readers mid-lookup, or batch handles pinned across a burst.
    /// Superseded values (kept alive by parked readers after a
    /// [`RcuCell::replace`]) are not counted; each is freed when its last
    /// holder drops it.
    ///
    /// The count is a momentary observation: concurrent readers may
    /// acquire or drop snapshots around the call. It is exact when the
    /// caller can rule out concurrent snapshot traffic (tests, quiesced
    /// scrapes).
    pub fn snapshot_count(&self) -> usize {
        let g = match self.ptr.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // One reference is the cell's own; the rest are snapshots.
        Arc::strong_count(&g) - 1
    }
}

/// A concurrently readable FIB with serialized incremental updates.
///
/// ```
/// use poptrie::sync::SharedFib;
/// use std::sync::Arc;
///
/// let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_direct_bits(18));
/// fib.insert("10.0.0.0/8".parse().unwrap(), 1);
///
/// let reader = Arc::clone(&fib);
/// let t = std::thread::spawn(move || reader.lookup(0x0A00_0001));
/// assert_eq!(t.join().unwrap(), Some(1));
/// ```
pub struct SharedFib<K: Bits> {
    writer: Mutex<Fib<K>>,
    current: RcuCell<Poptrie<K>>,
}

impl<K: Bits> core::fmt::Debug for SharedFib<K> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedFib").finish_non_exhaustive()
    }
}

impl<K: Bits> SharedFib<K> {
    /// An empty shared FIB with direct-pointing size `s`.
    pub fn with_direct_bits(s: u8) -> Self {
        let fib = Fib::with_direct_bits(s);
        let current = RcuCell::new(fib.poptrie().clone());
        SharedFib {
            writer: Mutex::new(fib),
            current,
        }
    }

    /// Build from an existing RIB (full compilation with aggregation
    /// optionally applied, as in the paper's evaluation setup).
    pub fn from_rib(rib: RadixTree<K, NextHop>, s: u8, aggregate: bool) -> Self {
        let fib = Fib::from_rib(rib, s, aggregate);
        let current = RcuCell::new(fib.poptrie().clone());
        SharedFib {
            writer: Mutex::new(fib),
            current,
        }
    }

    /// Longest-prefix-match lookup on the current snapshot; never blocks
    /// on writers rebuilding the FIB.
    #[inline]
    pub fn lookup(&self, key: K) -> Option<NextHop> {
        self.current.read(|t| t.lookup(key))
    }

    /// A shared snapshot of the current compiled FIB. The general form of
    /// [`SharedFib::lookup`] / [`SharedFib::lookup_batch`]: hold it to
    /// amortize snapshot acquisition over an entire packet burst or to
    /// read auxiliary state ([`Poptrie::stats`](crate::Poptrie::stats),
    /// [`Poptrie::ranges`](crate::Poptrie::ranges)) coherently with
    /// lookups.
    #[inline]
    pub fn snapshot(&self) -> Arc<Poptrie<K>> {
        self.current.snapshot()
    }

    /// Run `f` against one consistent FIB snapshot.
    #[inline]
    pub fn with_current<R>(&self, f: impl FnOnce(&Poptrie<K>) -> R) -> R {
        self.current.read(f)
    }

    /// Batched lookup: runs `keys` against one snapshot, storing next
    /// hops into `out`. Acquiring the snapshot once per batch keeps the
    /// read-side overhead negligible for forwarding-style workloads, and
    /// the underlying [`Poptrie::lookup_batch`](crate::Poptrie::lookup_batch)
    /// interleaves the keys with software prefetch.
    pub fn lookup_batch(&self, keys: &[K], out: &mut Vec<Option<NextHop>>) {
        out.clear();
        out.resize(keys.len(), None);
        let snap = self.snapshot();
        let mut raw = vec![poptrie_rib::NO_ROUTE; keys.len()];
        snap.lookup_batch(keys, &mut raw);
        for (o, nh) in out.iter_mut().zip(raw) {
            *o = (nh != poptrie_rib::NO_ROUTE).then_some(nh);
        }
    }

    /// Batched raw lookup against one snapshot: next hops into `out`
    /// ([`NO_ROUTE`](poptrie_rib::NO_ROUTE) for a miss), no allocation.
    pub fn lookup_batch_raw(&self, keys: &[K], out: &mut [NextHop]) {
        self.snapshot().lookup_batch(keys, out);
    }

    fn writer(&self) -> MutexGuard<'_, Fib<K>> {
        match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Announce a route and publish the updated FIB.
    pub fn insert(&self, prefix: Prefix<K>, nh: NextHop) -> Option<NextHop> {
        let mut w = self.writer();
        let old = w.insert(prefix, nh);
        self.current.replace(w.poptrie().clone());
        old
    }

    /// Withdraw a route and publish the updated FIB.
    pub fn remove(&self, prefix: Prefix<K>) -> Option<NextHop> {
        let mut w = self.writer();
        let old = w.remove(prefix)?;
        self.current.replace(w.poptrie().clone());
        Some(old)
    }

    /// Apply a batch of updates under one writer critical section and
    /// publish a single snapshot at the end — the efficient way to replay
    /// BGP update bursts.
    pub fn update_batch(&self, updates: impl IntoIterator<Item = RouteUpdate<K>>) {
        let mut w = self.writer();
        for u in updates {
            match u {
                RouteUpdate::Announce(p, nh) => {
                    w.insert(p, nh);
                }
                RouteUpdate::Withdraw(p) => {
                    w.remove(p);
                }
            }
        }
        self.current.replace(w.poptrie().clone());
    }

    /// Cumulative update-work counters from the writer side.
    pub fn stats(&self) -> UpdateStats {
        self.writer().stats()
    }

    /// Snapshots of the current FIB held outside the cell (see
    /// [`RcuCell::snapshot_count`]).
    pub fn snapshot_count(&self) -> usize {
        self.current.snapshot_count()
    }
}

/// A BGP-style route update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteUpdate<K: Bits> {
    /// Announce (insert or replace) `prefix -> next hop`.
    Announce(Prefix<K>, NextHop),
    /// Withdraw `prefix`.
    Withdraw(Prefix<K>),
}
