//! Concurrent FIB access (§3.5's update model).
//!
//! The paper requires that "blocking the read access to Poptrie using
//! write lock is not acceptable": the forwarding path keeps looking up the
//! current FIB while an update constructs the replacement, and the switch
//! is a single atomic operation. This module reproduces that model with a
//! read-copy-update cell:
//!
//! * **Readers** ([`SharedFib::lookup`]) grab an [`Arc`] snapshot of the
//!   current `Poptrie` and run the lookup against it — updates never
//!   invalidate a snapshot a reader holds.
//! * **Writers** ([`SharedFib::insert`] / [`SharedFib::remove`]) serialize
//!   on a mutex (the paper likewise assumes "the single-threaded update
//!   operation"), apply the incremental update of §3.5 to a private
//!   [`Fib`], and publish a new snapshot by swapping the `Arc`. The old
//!   snapshot is freed when its last reader drops it.
//!
//! The paper swaps `base1`/`base0` fields in place with atomic stores; in
//! Rust that fine-grained scheme would require pervasive `unsafe` shared
//! mutation of the node arrays. Publishing a whole-structure snapshot has
//! identical reader-visible semantics (readers always see a complete,
//! consistent FIB, updates never block readers for the duration of a
//! rebuild) at the cost of one `memcpy` of the compact arrays per update
//! batch — a few hundred microseconds for a full BGP table, amortizable
//! over batches via [`SharedFib::update_batch`]. Earlier revisions used
//! epoch-based reclamation (`crossbeam-epoch`) for strictly wait-free
//! reads; the cell now swaps an `Arc` under a [`RwLock`] whose read-side
//! critical section is a single reference-count increment, so the
//! workspace builds with no external dependencies and readers still never
//! wait for a FIB rebuild. DESIGN.md records both substitutions.

use poptrie_bitops::Bits;
use poptrie_rib::{NextHop, Prefix, RadixTree};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use crate::config::PoptrieConfig;
use crate::trie::Poptrie;
use crate::update::{Applied, Fib, UpdateError, UpdateStats};

/// An RCU cell: cheap snapshot reads of a heap value that is replaced
/// wholesale by writers.
///
/// Readers never hold a lock while using the value — [`RcuCell::read`]
/// and [`RcuCell::snapshot`] clone the inner [`Arc`] (one atomic
/// increment under a briefly-held read lock) and the caller works on
/// that snapshot for as long as it likes. Writers swap in a new `Arc`;
/// the old value is dropped when its last snapshot goes away.
pub struct RcuCell<T> {
    ptr: RwLock<Arc<T>>,
}

impl<T> core::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RcuCell").finish_non_exhaustive()
    }
}

impl<T> RcuCell<T> {
    /// Create a cell holding `value`.
    pub fn new(value: T) -> Self {
        RcuCell {
            ptr: RwLock::new(Arc::new(value)),
        }
    }

    /// A shared snapshot of the current value. The snapshot stays valid
    /// (and unchanged) even if writers replace the cell's value
    /// afterwards.
    #[inline]
    pub fn snapshot(&self) -> Arc<T> {
        // Poisoning cannot leave the Arc in a torn state (replacing it is
        // a single pointer swap), so a panic elsewhere must not take the
        // forwarding path down with it.
        match self.ptr.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Run `f` against the current value. The value is guaranteed to stay
    /// alive for the duration of the call even if a writer replaces it
    /// concurrently.
    #[inline]
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.snapshot())
    }

    /// Atomically publish `value`; the previous value is freed once the
    /// last outstanding snapshot drops.
    ///
    /// The write lock is held only for the pointer swap itself. The old
    /// `Arc` is moved out of the critical section and dropped after the
    /// guard is released: when the cell holds the last reference to a
    /// full BGP-table Poptrie, its deallocation takes long enough that
    /// dropping it under the lock would stall every reader for the
    /// duration.
    pub fn replace(&self, value: T) {
        let next = Arc::new(value);
        let old = {
            let mut g = match self.ptr.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            core::mem::replace(&mut *g, next)
        };
        #[cfg(feature = "telemetry")]
        crate::telemetry::record_rcu_publish(Arc::strong_count(&old) as u64 - 1);
        drop(old);
    }

    /// Number of snapshots of the *current* value held outside the cell
    /// — readers mid-lookup, or batch handles pinned across a burst.
    /// Superseded values (kept alive by parked readers after a
    /// [`RcuCell::replace`]) are not counted; each is freed when its last
    /// holder drops it.
    ///
    /// The count is a momentary observation: concurrent readers may
    /// acquire or drop snapshots around the call. It is exact when the
    /// caller can rule out concurrent snapshot traffic (tests, quiesced
    /// scrapes).
    pub fn snapshot_count(&self) -> usize {
        let g = match self.ptr.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // One reference is the cell's own; the rest are snapshots.
        Arc::strong_count(&g) - 1
    }
}

/// One published FIB state: the compiled [`Poptrie`] plus the RCU version
/// it was published as.
///
/// `FibSnapshot` dereferences to the [`Poptrie`], so every lookup-side
/// method ([`Poptrie::lookup`](crate::Poptrie::lookup),
/// [`Poptrie::lookup_batch`](crate::Poptrie::lookup_batch),
/// [`Poptrie::stats`](crate::Poptrie::stats), …) is available directly on
/// a snapshot. The version is what lets a dataplane attribute each served
/// batch to a specific published state — the forwarding engine's
/// oracle-exactness test hangs off it.
#[derive(Debug)]
pub struct FibSnapshot<K: Bits> {
    trie: Poptrie<K>,
    version: u64,
    /// Shared-leaves mode: pins the publish epoch so the interner cannot
    /// recycle any extent this snapshot's leaf indices may reference.
    /// Dropped (a plain `Arc` release) when the snapshot dies.
    _epoch: Option<Arc<crate::shared_leaves::EpochGuard>>,
}

impl<K: Bits> FibSnapshot<K> {
    /// The publish sequence number: 0 for the initially compiled state,
    /// +1 for every snapshot published after it.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl<K: Bits> core::ops::Deref for FibSnapshot<K> {
    type Target = Poptrie<K>;

    #[inline]
    fn deref(&self) -> &Poptrie<K> {
        &self.trie
    }
}

/// What one [`SharedFib::update_batch`] call did: how many events it
/// consumed, how many were effective (changed the RIB), and the version
/// of the single snapshot it published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Events consumed from the iterator.
    pub events: usize,
    /// Events that changed the RIB (re-announcements and absent
    /// withdraws don't).
    pub applied: usize,
    /// The version of the snapshot published at the end of the batch.
    pub version: u64,
}

/// The writer half of a [`SharedFib`]: the private [`Fib`] plus the
/// version counter its next publish will take.
struct Writer<K: Bits> {
    fib: Fib<K>,
    version: u64,
}

/// A concurrently readable FIB with serialized incremental updates.
///
/// ```
/// use poptrie::sync::SharedFib;
/// use poptrie::PoptrieConfig;
/// use std::sync::Arc;
///
/// let cfg = PoptrieConfig::new().direct_bits(18).build()?;
/// let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_config(cfg));
/// fib.insert("10.0.0.0/8".parse().unwrap(), 1)?;
///
/// let reader = Arc::clone(&fib);
/// let t = std::thread::spawn(move || reader.lookup(0x0A00_0001));
/// assert_eq!(t.join().unwrap(), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SharedFib<K: Bits> {
    writer: Mutex<Writer<K>>,
    current: RcuCell<FibSnapshot<K>>,
}

impl<K: Bits> core::fmt::Debug for SharedFib<K> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedFib").finish_non_exhaustive()
    }
}

impl<K: Bits> SharedFib<K> {
    fn from_fib(fib: Fib<K>) -> Self {
        let epoch = fib.poptrie().shared_leaves().map(|h| h.begin_epoch());
        let current = RcuCell::new(FibSnapshot {
            trie: fib.poptrie().clone(),
            version: 0,
            _epoch: epoch,
        });
        SharedFib {
            writer: Mutex::new(Writer { fib, version: 0 }),
            current,
        }
    }

    /// An empty shared FIB shaped by `config`.
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS`.
    pub fn with_config(config: PoptrieConfig) -> Self {
        Self::from_fib(Fib::with_config(config))
    }

    /// Build from an existing RIB (full compilation, §3's aggregation per
    /// `config.aggregate`), then serve concurrent lookups and serialized
    /// incremental updates.
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS`.
    pub fn compile(rib: RadixTree<K, NextHop>, config: PoptrieConfig) -> Self {
        Self::from_fib(Fib::compile(rib, config))
    }

    /// An empty shared FIB whose leaves resolve out of a shared VRF-group
    /// arena. See [`Fib::with_config_shared`].
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS`.
    pub fn with_config_shared(
        config: PoptrieConfig,
        leaves: crate::shared_leaves::LeafStoreHandle,
    ) -> Self {
        Self::from_fib(Fib::with_config_shared(config, leaves))
    }

    /// Build from an existing RIB with leaf blocks interned into a shared
    /// VRF-group arena. See [`Fib::compile_shared`].
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS`, or when the shared
    /// arena cannot fit the table's leaf blocks.
    pub fn compile_shared(
        rib: RadixTree<K, NextHop>,
        config: PoptrieConfig,
        leaves: crate::shared_leaves::LeafStoreHandle,
    ) -> Self {
        Self::from_fib(Fib::compile_shared(rib, config, leaves))
    }

    /// Longest-prefix-match lookup on the current snapshot; never blocks
    /// on writers rebuilding the FIB.
    #[inline]
    pub fn lookup(&self, key: K) -> Option<NextHop> {
        self.current.read(|t| t.lookup(key))
    }

    /// A shared snapshot of the current compiled FIB. The general form of
    /// [`SharedFib::lookup`] / [`SharedFib::lookup_batch`]: hold it to
    /// amortize snapshot acquisition over an entire packet burst or to
    /// read auxiliary state ([`Poptrie::stats`](crate::Poptrie::stats),
    /// [`Poptrie::ranges`](crate::Poptrie::ranges)) coherently with
    /// lookups. The snapshot carries its publish [version]
    /// ([`FibSnapshot::version`]), so a dataplane can attribute every
    /// served batch to a specific published state.
    ///
    /// [version]: FibSnapshot::version
    #[inline]
    pub fn snapshot(&self) -> Arc<FibSnapshot<K>> {
        self.current.snapshot()
    }

    /// Run `f` against one consistent FIB snapshot.
    #[inline]
    pub fn with_current<R>(&self, f: impl FnOnce(&FibSnapshot<K>) -> R) -> R {
        self.current.read(f)
    }

    /// The version of the currently published snapshot.
    #[inline]
    pub fn version(&self) -> u64 {
        self.current.read(|s| s.version)
    }

    /// Batched lookup: runs `keys` against one snapshot, storing next
    /// hops into `out`. Acquiring the snapshot once per batch keeps the
    /// read-side overhead negligible for forwarding-style workloads, and
    /// the underlying [`Poptrie::lookup_batch`](crate::Poptrie::lookup_batch)
    /// interleaves the keys with software prefetch.
    pub fn lookup_batch(&self, keys: &[K], out: &mut Vec<Option<NextHop>>) {
        out.clear();
        out.resize(keys.len(), None);
        let snap = self.snapshot();
        let mut raw = vec![poptrie_rib::NO_ROUTE; keys.len()];
        snap.lookup_batch(keys, &mut raw);
        for (o, nh) in out.iter_mut().zip(raw) {
            *o = (nh != poptrie_rib::NO_ROUTE).then_some(nh);
        }
    }

    /// Batched raw lookup against one snapshot: next hops into `out`
    /// ([`NO_ROUTE`](poptrie_rib::NO_ROUTE) for a miss), no allocation.
    pub fn lookup_batch_raw(&self, keys: &[K], out: &mut [NextHop]) {
        self.snapshot().lookup_batch(keys, out);
    }

    fn writer(&self) -> MutexGuard<'_, Writer<K>> {
        match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Publish the writer's current state as the next snapshot version.
    /// In shared-leaves mode each publish opens a fresh interner epoch and
    /// the snapshot pins it; retiring the previous snapshot (and every
    /// older one) is what lets the interner recycle released extents.
    fn publish(&self, w: &mut Writer<K>) -> u64 {
        w.version += 1;
        let epoch = w.fib.poptrie().shared_leaves().map(|h| h.begin_epoch());
        self.current.replace(FibSnapshot {
            trie: w.fib.poptrie().clone(),
            version: w.version,
            _epoch: epoch,
        });
        w.version
    }

    /// Announce a route and publish the updated FIB.
    ///
    /// Returns what happened ([`Applied::Inserted`], [`Applied::Replaced`]
    /// or [`Applied::Unchanged`]); a new snapshot is published on any
    /// `Ok`. Fails without publishing when the route is rejected (see
    /// [`UpdateError`]).
    pub fn insert(&self, prefix: Prefix<K>, nh: NextHop) -> Result<Applied, UpdateError> {
        let mut w = self.writer();
        let applied = w.fib.insert(prefix, nh)?;
        self.publish(&mut w);
        Ok(applied)
    }

    /// Withdraw a route. A new snapshot is published only when the route
    /// actually existed ([`Applied::Withdrawn`]); [`Applied::Absent`]
    /// leaves the current snapshot in place.
    pub fn remove(&self, prefix: Prefix<K>) -> Result<Applied, UpdateError> {
        let mut w = self.writer();
        let applied = w.fib.remove(prefix)?;
        if applied.changed() {
            self.publish(&mut w);
        }
        Ok(applied)
    }

    /// Apply a batch of updates under one writer critical section and
    /// publish a single snapshot at the end — the efficient way to replay
    /// BGP update bursts. Per-event rejections ([`UpdateError`]) are
    /// counted out of `applied` but do not abort the batch, matching how
    /// a BGP speaker treats malformed updates in a burst.
    pub fn update_batch(&self, updates: impl IntoIterator<Item = RouteUpdate<K>>) -> BatchOutcome {
        let mut w = self.writer();
        let mut events = 0usize;
        let mut applied = 0usize;
        for u in updates {
            events += 1;
            let outcome = match u {
                RouteUpdate::Announce(p, nh) => w.fib.insert(p, nh),
                RouteUpdate::Withdraw(p) => w.fib.remove(p),
            };
            if matches!(outcome, Ok(a) if a.changed()) {
                applied += 1;
            }
        }
        let version = self.publish(&mut w);
        BatchOutcome {
            events,
            applied,
            version,
        }
    }

    /// Force the batched-lookup dispatch tier (clamped to what the CPU
    /// supports) and publish a fresh snapshot carrying it, so readers
    /// pick the new kernel up on their next snapshot acquisition.
    /// Returns the tier actually installed. The benchmark harness and
    /// the differential tests use this to pit SIMD tiers against the
    /// scalar walker on identical tables.
    pub fn set_batch_backend(
        &self,
        backend: poptrie_bitops::BatchBackend,
    ) -> poptrie_bitops::BatchBackend {
        let mut w = self.writer();
        let installed = w.fib.set_batch_backend(backend);
        self.publish(&mut w);
        installed
    }

    /// A deep copy of this shared FIB: an independent `SharedFib` whose
    /// writer state and published snapshot equal this one's at the moment
    /// of the call (same routes, same version, same dispatch tier).
    ///
    /// This is the NUMA replica constructor: the forwarding engine keeps
    /// one replica per socket so workers read node arrays resident on
    /// their own memory node, and its single control-plane writer applies
    /// every coalesced update burst to each replica in turn. The copy is
    /// taken under this FIB's writer lock, so it can never observe a
    /// half-applied batch; after the call the two FIBs share nothing and
    /// diverge unless fed the same updates.
    ///
    /// # Panics
    ///
    /// Panics for a shared-leaves (VRF) table: a replica would be a second
    /// *writer* over the same interned extents, and writer-side refcounts
    /// admit exactly one. VRF deployments replicate per-group (rebuild the
    /// group's tables against a second arena) instead.
    pub fn replicate(&self) -> SharedFib<K> {
        let w = self.writer();
        assert!(
            w.fib.poptrie().shared_leaves().is_none(),
            "cannot replicate a shared-leaves (VRF) table: interned \
             extents admit one writer; rebuild the VRF group instead"
        );
        let current = RcuCell::new(FibSnapshot {
            trie: w.fib.poptrie().clone(),
            version: w.version,
            _epoch: None,
        });
        SharedFib {
            writer: Mutex::new(Writer {
                fib: w.fib.clone(),
                version: w.version,
            }),
            current,
        }
    }

    /// Cumulative update-work counters from the writer side.
    pub fn stats(&self) -> UpdateStats {
        self.writer().fib.stats()
    }

    /// Run `f` against the writer-side [`Fib`] under the writer lock —
    /// coherent access to the RIB and the live compiled structure (e.g.
    /// [`Fib::rib`], [`Poptrie::audit`](crate::Poptrie::audit)) without
    /// publishing anything. Blocks writers for the duration; not a hot
    /// path.
    pub fn with_fib<R>(&self, f: impl FnOnce(&Fib<K>) -> R) -> R {
        f(&self.writer().fib)
    }

    /// Snapshots of the current FIB held outside the cell (see
    /// [`RcuCell::snapshot_count`]).
    pub fn snapshot_count(&self) -> usize {
        self.current.snapshot_count()
    }
}

/// A BGP-style route update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteUpdate<K: Bits> {
    /// Announce (insert or replace) `prefix -> next hop`.
    Announce(Prefix<K>, NextHop),
    /// Withdraw `prefix`.
    Withdraw(Prefix<K>),
}
