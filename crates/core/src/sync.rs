//! Lock-free concurrent FIB access (§3.5's update model).
//!
//! The paper requires that "blocking the read access to Poptrie using
//! write lock is not acceptable": the forwarding path keeps looking up the
//! current FIB while an update constructs the replacement, and the switch
//! is a single atomic operation. This module reproduces that model with an
//! epoch-based read-copy-update cell:
//!
//! * **Readers** ([`SharedFib::lookup`]) pin the epoch, load the current
//!   `Poptrie` pointer with an acquire load, and run the lookup — no locks,
//!   no reference-count contention, wait-free with respect to writers.
//! * **Writers** ([`SharedFib::insert`] / [`SharedFib::remove`]) serialize
//!   on a mutex (the paper likewise assumes "the single-threaded update
//!   operation"), apply the incremental update of §3.5 to a private
//!   [`Fib`], publish a snapshot with an atomic pointer swap, and defer
//!   destruction of the old snapshot until no reader can hold it.
//!
//! The paper swaps `base1`/`base0` fields in place with atomic stores; in
//! Rust that fine-grained scheme would require pervasive `unsafe` shared
//! mutation of the node arrays. Publishing a whole-structure snapshot has
//! identical reader-visible semantics (readers always see a complete,
//! consistent FIB, updates never block readers) at the cost of one
//! `memcpy` of the compact arrays per update batch — a few hundred
//! microseconds for a full BGP table, amortizable over batches via
//! [`SharedFib::update_batch`]. DESIGN.md records this substitution.

use crossbeam_epoch::{self as epoch, Atomic, Owned};
use parking_lot::Mutex;
use poptrie_bitops::Bits;
use poptrie_rib::{NextHop, Prefix, RadixTree};
use std::sync::atomic::Ordering;

use crate::trie::Poptrie;
use crate::update::{Fib, UpdateStats};

/// An epoch-based RCU cell: lock-free reads of a heap value that is
/// replaced wholesale by writers.
pub struct RcuCell<T> {
    ptr: Atomic<T>,
}

impl<T> core::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RcuCell").finish_non_exhaustive()
    }
}

impl<T> RcuCell<T> {
    /// Create a cell holding `value`.
    pub fn new(value: T) -> Self {
        RcuCell {
            ptr: Atomic::new(value),
        }
    }

    /// Run `f` against the current value. The value is guaranteed to stay
    /// alive for the duration of the call even if a writer replaces it
    /// concurrently.
    #[inline]
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let guard = epoch::pin();
        let shared = self.ptr.load(Ordering::Acquire, &guard);
        // SAFETY: `shared` was stored by `new` or `replace` and is never
        // null; destruction is deferred past this pinned epoch.
        f(unsafe { shared.deref() })
    }

    /// Atomically publish `value`, retiring the previous one once all
    /// current readers have unpinned.
    pub fn replace(&self, value: T) {
        let guard = epoch::pin();
        let old = self.ptr.swap(Owned::new(value), Ordering::AcqRel, &guard);
        // SAFETY: `old` is the unique previous allocation; no new reader
        // can acquire it after the swap, and existing readers are covered
        // by the deferred destruction.
        unsafe {
            guard.defer_destroy(old);
        }
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no readers exist; reclaim immediately.
        unsafe {
            let ptr = std::mem::replace(&mut self.ptr, Atomic::null());
            drop(ptr.into_owned());
        }
    }
}

/// A concurrently readable FIB with serialized incremental updates.
///
/// ```
/// use poptrie::sync::SharedFib;
/// use std::sync::Arc;
///
/// let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_direct_bits(18));
/// fib.insert("10.0.0.0/8".parse().unwrap(), 1);
///
/// let reader = Arc::clone(&fib);
/// let t = std::thread::spawn(move || reader.lookup(0x0A00_0001));
/// assert_eq!(t.join().unwrap(), Some(1));
/// ```
pub struct SharedFib<K: Bits> {
    writer: Mutex<Fib<K>>,
    current: RcuCell<Poptrie<K>>,
}

impl<K: Bits> core::fmt::Debug for SharedFib<K> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedFib").finish_non_exhaustive()
    }
}

impl<K: Bits> SharedFib<K> {
    /// An empty shared FIB with direct-pointing size `s`.
    pub fn with_direct_bits(s: u8) -> Self {
        let fib = Fib::with_direct_bits(s);
        let current = RcuCell::new(fib.poptrie().clone());
        SharedFib {
            writer: Mutex::new(fib),
            current,
        }
    }

    /// Build from an existing RIB (full compilation with aggregation
    /// optionally applied, as in the paper's evaluation setup).
    pub fn from_rib(rib: RadixTree<K, NextHop>, s: u8, aggregate: bool) -> Self {
        let fib = Fib::from_rib(rib, s, aggregate);
        let current = RcuCell::new(fib.poptrie().clone());
        SharedFib {
            writer: Mutex::new(fib),
            current,
        }
    }

    /// Lock-free longest-prefix-match lookup on the current snapshot.
    #[inline]
    pub fn lookup(&self, key: K) -> Option<NextHop> {
        self.current.read(|t| t.lookup(key))
    }

    /// Run `f` against one consistent FIB snapshot, lock-free. The
    /// general form of [`SharedFib::lookup`]/[`SharedFib::lookup_batch`]:
    /// use it to amortize the epoch pin over an entire packet burst or to
    /// read auxiliary state ([`Poptrie::stats`], [`Poptrie::ranges`])
    /// coherently with lookups.
    #[inline]
    pub fn with_current<R>(&self, f: impl FnOnce(&Poptrie<K>) -> R) -> R {
        self.current.read(f)
    }

    /// Lock-free batched lookup: runs `keys` against one snapshot, storing
    /// next hops into `out`. Pinning once per batch keeps the read-side
    /// overhead negligible for forwarding-style workloads.
    pub fn lookup_batch(&self, keys: &[K], out: &mut Vec<Option<NextHop>>) {
        out.clear();
        self.current.read(|t| {
            out.extend(keys.iter().map(|&k| t.lookup(k)));
        });
    }

    /// Announce a route and publish the updated FIB.
    pub fn insert(&self, prefix: Prefix<K>, nh: NextHop) -> Option<NextHop> {
        let mut w = self.writer.lock();
        let old = w.insert(prefix, nh);
        self.current.replace(w.poptrie().clone());
        old
    }

    /// Withdraw a route and publish the updated FIB.
    pub fn remove(&self, prefix: Prefix<K>) -> Option<NextHop> {
        let mut w = self.writer.lock();
        let old = w.remove(prefix)?;
        self.current.replace(w.poptrie().clone());
        Some(old)
    }

    /// Apply a batch of updates under one writer critical section and
    /// publish a single snapshot at the end — the efficient way to replay
    /// BGP update bursts.
    pub fn update_batch(&self, updates: impl IntoIterator<Item = RouteUpdate<K>>) {
        let mut w = self.writer.lock();
        for u in updates {
            match u {
                RouteUpdate::Announce(p, nh) => {
                    w.insert(p, nh);
                }
                RouteUpdate::Withdraw(p) => {
                    w.remove(p);
                }
            }
        }
        self.current.replace(w.poptrie().clone());
    }

    /// Cumulative update-work counters from the writer side.
    pub fn stats(&self) -> UpdateStats {
        self.writer.lock().stats()
    }
}

/// A BGP-style route update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteUpdate<K: Bits> {
    /// Announce (insert or replace) `prefix -> next hop`.
    Announce(Prefix<K>, NextHop),
    /// Withdraw `prefix`.
    Withdraw(Prefix<K>),
}
