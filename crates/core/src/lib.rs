//! # Poptrie
//!
//! A Rust implementation of **Poptrie** — the compressed multiway trie with
//! population-count indexing for fast and scalable software IP routing
//! table lookup, from Hirochika Asai and Yasuhiro Ohara, *SIGCOMM 2015*.
//!
//! Poptrie is a 64-ary trie (`k = 6`): each internal node consumes six bits
//! of the destination address. Instead of a 64-pointer child array, a node
//! stores
//!
//! * `vector` — a 64-bit vector whose `n`-th bit says whether the child for
//!   chunk value `n` is an internal node (`1`) or a leaf (`0`);
//! * `base1` — the index of the node's first child in one flat, contiguous
//!   internal-node array; the child for chunk `n` lives at
//!   `base1 + popcnt(vector & low_bits(n+1)) - 1`;
//! * `leafvec` + `base0` — the same trick for leaves, with runs of
//!   identical adjacent leaves compressed to a single slot (§3.3);
//!
//! so a node is 24 bytes (16 without the leafvec extension) and an entire
//! BGP full table fits comfortably inside the CPU cache — the property the
//! paper credits for its 200+ Mlps single-core lookup rates.
//!
//! ## Quick start
//!
//! ```
//! use poptrie::Poptrie;
//! use poptrie_rib::{Prefix, RadixTree};
//!
//! // Build a RIB, then compile it into a Poptrie FIB.
//! let mut rib: RadixTree<u32, u16> = RadixTree::new();
//! rib.insert("10.0.0.0/8".parse().unwrap(), 1);
//! rib.insert("10.64.0.0/16".parse().unwrap(), 2);
//!
//! let fib: Poptrie<u32> = Poptrie::builder().direct_bits(18).build(&rib);
//! assert_eq!(fib.lookup(0x0A40_0001), Some(2)); // 10.64.0.1
//! assert_eq!(fib.lookup(0x0A00_0001), Some(1)); // 10.0.0.1
//! assert_eq!(fib.lookup(0x0B00_0001), None);    // 11.0.0.1
//! ```
//!
//! ## Crate layout
//!
//! * [`Poptrie`] / [`PoptrieBasic`] — the lookup structure, with
//!   ([`Poptrie`]) and without ([`PoptrieBasic`]) the leaf bit-vector
//!   compression of §3.3. Both are generic over the key width: `u32` for
//!   IPv4 and `u128` for IPv6 (§4.10).
//! * [`Builder`] — compilation from a [`RadixTree`] RIB, with the paper's
//!   options: direct pointing size `s` (§3.4) and route aggregation (§3).
//! * [`Fib`] — a RIB + Poptrie pair supporting the incremental update of
//!   §3.5: a route change surgically rebuilds only the affected subtree
//!   through the buddy allocator.
//! * [`sync::SharedFib`] — a concurrent wrapper: lock-free readers via
//!   epoch-based RCU, serialized writers (§3.5's lock-free update model).
//!
//! [`RadixTree`]: poptrie_rib::RadixTree

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
#[cfg(target_arch = "x86_64")]
mod batch_simd;
pub mod builder;
pub mod config;
pub mod ids;
pub mod node;
#[cfg(feature = "trace")]
pub mod phase;
pub mod prelude;
pub mod serial;
pub mod shared_leaves;
pub mod sync;
#[cfg(feature = "telemetry")]
pub mod telemetry;
pub mod trie;
pub mod update;

pub use audit::AuditReport;
pub use builder::Builder;
pub use config::{ConfigError, PoptrieConfig, PoptrieConfigBuilder};
pub use ids::{SourceId, VrfId};
pub use node::{Node16, Node24, NodeRepr};
pub use poptrie_bitops::BatchBackend;
pub use serial::SerializeError;
pub use shared_leaves::{EpochGuard, LeafInterner, LeafStoreHandle, SharedLeaves};
pub use trie::{Poptrie, PoptrieBasic, PoptrieStats, BATCH_LANES};
pub use update::{Applied, Fib, UpdateError, UpdateStats, UpdateStrategy};

// Re-export the vocabulary types callers need.
pub use poptrie_rib::{Lpm, NextHop, Prefix, PrefixError, RadixTree, NO_ROUTE};

#[cfg(test)]
mod tests;
