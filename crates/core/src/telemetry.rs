//! Runtime telemetry for the Poptrie hot paths (the `telemetry` feature).
//!
//! The paper's evaluation is a set of offline measurements: lookup rate by
//! traffic pattern (Figs. 8–10), prefix-length/descent-depth breakdowns
//! (Fig. 11), memory footprints (Tables 2, 3, 5) and per-update work
//! (Table 6, §4.9). This module keeps the same signals flowing from a
//! *live* FIB: process-wide, lock-free counters that the lookup and
//! update paths increment and that [`snapshot`] materializes into a
//! [`TelemetrySnapshot`] (human-readable struct) or, via
//! [`TelemetrySnapshot::registry`], a [`TelemetryRegistry`] rendering
//! Prometheus text or JSON.
//!
//! # Zero cost when disabled
//!
//! Every instrumentation site in `trie.rs`, `update.rs` and `sync.rs` is
//! a `#[cfg(feature = "telemetry")]` block, so the default build compiles
//! to exactly the uninstrumented code — no branch, no no-op call, no
//! symbol. CI asserts the default release rlib contains no telemetry
//! metric names.
//!
//! # Counter semantics
//!
//! The counters are **process-wide**, aggregated across every
//! `PoptrieImpl` instance in the process (matching the usual Prometheus
//! model of per-process totals). All increments are relaxed atomics on
//! per-thread shards — see `poptrie-telemetry` for the memory-ordering
//! contract. [`reset`] zeroes everything; serialize it against the
//! workload you want to measure.
//!
//! Depth accounting: a lookup resolved entirely by the §3.4 direct table
//! records depth 0; one that descends through `d` internal nodes records
//! depth `d`. Every lookup records exactly one depth observation, so the
//! histogram's mass equals the lookup total — the reconciliation the
//! differential test (`tests/telemetry.rs` in the umbrella crate)
//! enforces.

use poptrie_bitops::Bits;
use poptrie_telemetry::{Counter, Gauge, Histogram, Log2Histogram, LOG2_BUCKETS};

pub use poptrie_buddy::Fragmentation;
pub use poptrie_telemetry::{Metric, MetricValue, TelemetryRegistry};

use crate::node::NodeRepr;
use crate::trie::PoptrieImpl;
use crate::update::UpdateStats;

/// Buckets in the descent-depth histogram. Depth 0 is a direct-table hit;
/// the deepest possible descent is `ceil((K::BITS - s) / 6)` — 22 for
/// `u128` with `s = 0` — so 24 buckets never clamp in practice.
pub const DEPTH_BUCKETS: usize = 24;

/// Buckets in the batch-lane fill histogram: a chunk carries 0..=[`BATCH_LANES`]
/// keys.
///
/// [`BATCH_LANES`]: crate::BATCH_LANES
pub const FILL_BUCKETS: usize = crate::BATCH_LANES + 1;

// ---- the process-wide metrics ------------------------------------------

static LOOKUPS_SCALAR: Counter = Counter::new();
static LOOKUPS_BATCHED: Counter = Counter::new();
static DIRECT_HITS: Counter = Counter::new();
static RES_LEAFVEC: Counter = Counter::new();
static RES_VECTOR: Counter = Counter::new();
static DEPTH: Histogram<DEPTH_BUCKETS> = Histogram::new();
static BATCH_CALLS: Counter = Counter::new();
static BATCH_FILL: Histogram<FILL_BUCKETS> = Histogram::new();

static ANNOUNCES: Counter = Counter::new();
static WITHDRAWS: Counter = Counter::new();
static REBUILDS: Counter = Counter::new();
static UPDATE_LATENCY: Log2Histogram = Log2Histogram::new();
static DIRECT_REPLACEMENTS: Counter = Counter::new();
static NODES_ALLOCATED: Counter = Counter::new();
static NODES_FREED: Counter = Counter::new();
static LEAVES_ALLOCATED: Counter = Counter::new();
static LEAVES_FREED: Counter = Counter::new();

static RCU_PUBLISHES: Counter = Counter::new();
static RCU_OUTSTANDING_PEAK: Gauge = Gauge::new();

// ---- hot-path hooks (called from cfg-gated sites in trie/update/sync) --

/// A lookup fully resolved by the direct-pointing table (depth 0).
#[inline]
pub(crate) fn record_direct_hit(batched: bool) {
    if batched {
        LOOKUPS_BATCHED.inc();
    } else {
        LOOKUPS_SCALAR.inc();
    }
    DIRECT_HITS.inc();
    DEPTH.record(0);
}

/// A lookup that descended `depth` internal nodes and resolved a leaf.
/// `leafvec` says whether the terminal node ranks leaves through the §3.3
/// compressed `leafvec` (`Node24`) or the plain vector (`Node16`).
#[inline]
pub(crate) fn record_leaf_resolution(batched: bool, depth: u32, leafvec: bool) {
    if batched {
        LOOKUPS_BATCHED.inc();
    } else {
        LOOKUPS_SCALAR.inc();
    }
    if leafvec {
        RES_LEAFVEC.inc();
    } else {
        RES_VECTOR.inc();
    }
    DEPTH.record(depth as usize);
}

/// One `lookup_batch_chunk` invocation carrying `fill` keys.
#[inline]
pub(crate) fn record_batch_call(fill: usize) {
    BATCH_CALLS.inc();
    BATCH_FILL.record(fill);
}

/// One applied route update (announce or withdraw that changed the RIB):
/// its wall latency in TSC cycles and the structural work it performed
/// (an [`UpdateStats`] delta).
pub(crate) fn record_update(announce: bool, cycles: u64, work: &UpdateStats) {
    if announce {
        ANNOUNCES.inc();
    } else {
        WITHDRAWS.inc();
    }
    UPDATE_LATENCY.record(cycles);
    DIRECT_REPLACEMENTS.add(work.direct_replacements);
    NODES_ALLOCATED.add(work.nodes_allocated);
    NODES_FREED.add(work.nodes_freed);
    LEAVES_ALLOCATED.add(work.leaves_allocated);
    LEAVES_FREED.add(work.leaves_freed);
}

/// One full recompilation ([`Fib::rebuild`](crate::Fib::rebuild)).
pub(crate) fn record_rebuild(cycles: u64) {
    REBUILDS.inc();
    UPDATE_LATENCY.record(cycles);
}

/// One RCU snapshot publish, with the number of old snapshots still
/// outstanding at the instant of the swap.
pub(crate) fn record_rcu_publish(outstanding: u64) {
    RCU_PUBLISHES.inc();
    RCU_OUTSTANDING_PEAK.record_max(outstanding);
}

// ---- exposition --------------------------------------------------------

/// Point-in-time structural gauges of one compiled FIB, sampled by
/// [`structure_gauges`]. These are the live analogues of Table 2/Table 5
/// columns plus the §3.5 buddy-allocator health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureGauges {
    /// Live internal nodes (Table 2's "# of inodes").
    pub inodes: usize,
    /// Live leaves (Table 2's "# of leaves").
    pub leaves: usize,
    /// Direct-pointing entries (`2^s`).
    pub direct_slots: usize,
    /// Memory footprint in bytes (Tables 2, 3, 5 accounting).
    pub memory_bytes: usize,
    /// Fragmentation of the internal-node index space.
    pub node_buddy: Fragmentation,
    /// Fragmentation of the leaf index space.
    pub leaf_buddy: Fragmentation,
}

/// Sample the structural gauges of `fib`. Cheap (no traversal): counts
/// and buddy free-list summaries only.
pub fn structure_gauges<K: Bits, N: NodeRepr>(fib: &PoptrieImpl<K, N>) -> StructureGauges {
    let st = fib.stats();
    StructureGauges {
        inodes: st.inodes,
        leaves: st.leaves,
        direct_slots: st.direct_slots,
        memory_bytes: st.memory_bytes,
        node_buddy: fib.node_buddy.fragmentation(),
        leaf_buddy: fib.leaf_buddy.fragmentation(),
    }
}

/// A materialized copy of every process-wide telemetry metric, plus
/// optionally the structural gauges of one FIB
/// ([`TelemetrySnapshot::attach_structure`]).
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Scalar [`lookup`](crate::Poptrie::lookup)/`lookup_raw` calls.
    pub lookups_scalar: u64,
    /// Keys resolved through the batched path.
    pub lookups_batched: u64,
    /// Lookups fully resolved by the §3.4 direct table (depth 0).
    pub direct_hits: u64,
    /// Leaf resolutions ranked through the §3.3 compressed `leafvec`.
    pub leafvec_resolutions: u64,
    /// Leaf resolutions ranked through the plain vector (`PoptrieBasic`).
    pub vector_resolutions: u64,
    /// Descent-depth histogram; index = internal nodes visited, 0 = direct
    /// hit. Mass equals `lookups_scalar + lookups_batched`.
    pub depth: [u64; DEPTH_BUCKETS],
    /// `lookup_batch_chunk` invocations.
    pub batch_calls: u64,
    /// Batch-lane fill histogram; index = keys in the chunk.
    pub batch_fill: [u64; FILL_BUCKETS],
    /// Applied announces (inserts that changed the RIB).
    pub announces: u64,
    /// Applied withdraws.
    pub withdraws: u64,
    /// Full recompilations.
    pub rebuilds: u64,
    /// Per-update latency histogram, log2 buckets of TSC cycles: bucket 0
    /// holds 0, bucket `i` holds `[2^(i-1), 2^i)`.
    pub update_latency: [u64; LOG2_BUCKETS],
    /// Sum of all recorded update latencies, in cycles.
    pub update_latency_sum: u64,
    /// Direct-pointing entries rewritten (§4.9's top-level replacements).
    pub direct_replacements: u64,
    /// Internal nodes allocated by updates.
    pub nodes_allocated: u64,
    /// Internal nodes freed by updates.
    pub nodes_freed: u64,
    /// Leaves allocated by updates.
    pub leaves_allocated: u64,
    /// Leaves freed by updates.
    pub leaves_freed: u64,
    /// RCU snapshot publishes ([`RcuCell::replace`](crate::sync::RcuCell::replace)
    /// through [`SharedFib`](crate::sync::SharedFib)).
    pub rcu_publishes: u64,
    /// Peak number of old snapshots still outstanding at publish time.
    pub rcu_outstanding_peak: u64,
    /// Structural gauges of one FIB, when attached.
    pub structure: Option<StructureGauges>,
}

/// Materialize the current process-wide counters.
pub fn snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot {
        lookups_scalar: LOOKUPS_SCALAR.get(),
        lookups_batched: LOOKUPS_BATCHED.get(),
        direct_hits: DIRECT_HITS.get(),
        leafvec_resolutions: RES_LEAFVEC.get(),
        vector_resolutions: RES_VECTOR.get(),
        depth: DEPTH.counts(),
        batch_calls: BATCH_CALLS.get(),
        batch_fill: BATCH_FILL.counts(),
        announces: ANNOUNCES.get(),
        withdraws: WITHDRAWS.get(),
        rebuilds: REBUILDS.get(),
        update_latency: UPDATE_LATENCY.counts(),
        update_latency_sum: UPDATE_LATENCY.sum(),
        direct_replacements: DIRECT_REPLACEMENTS.get(),
        nodes_allocated: NODES_ALLOCATED.get(),
        nodes_freed: NODES_FREED.get(),
        leaves_allocated: LEAVES_ALLOCATED.get(),
        leaves_freed: LEAVES_FREED.get(),
        rcu_publishes: RCU_PUBLISHES.get(),
        rcu_outstanding_peak: RCU_OUTSTANDING_PEAK.get(),
        structure: None,
    }
}

/// Zero every process-wide counter, histogram and gauge. Serialize this
/// against the workload being measured (tests that assert exact totals
/// must own the process).
pub fn reset() {
    LOOKUPS_SCALAR.reset();
    LOOKUPS_BATCHED.reset();
    DIRECT_HITS.reset();
    RES_LEAFVEC.reset();
    RES_VECTOR.reset();
    DEPTH.reset();
    BATCH_CALLS.reset();
    BATCH_FILL.reset();
    ANNOUNCES.reset();
    WITHDRAWS.reset();
    REBUILDS.reset();
    UPDATE_LATENCY.reset();
    DIRECT_REPLACEMENTS.reset();
    NODES_ALLOCATED.reset();
    NODES_FREED.reset();
    LEAVES_ALLOCATED.reset();
    LEAVES_FREED.reset();
    RCU_PUBLISHES.reset();
    RCU_OUTSTANDING_PEAK.reset();
}

impl TelemetrySnapshot {
    /// Total lookups across both paths.
    pub fn lookups_total(&self) -> u64 {
        self.lookups_scalar + self.lookups_batched
    }

    /// Total applied route updates.
    pub fn updates_total(&self) -> u64 {
        self.announces + self.withdraws
    }

    /// Attach the structural gauges of `fib` (builder style).
    pub fn attach_structure<K: Bits, N: NodeRepr>(mut self, fib: &PoptrieImpl<K, N>) -> Self {
        self.structure = Some(structure_gauges(fib));
        self
    }

    /// Build the full metric registry this snapshot describes, ready to
    /// render as Prometheus text ([`TelemetryRegistry::render_prometheus`])
    /// or JSON ([`TelemetryRegistry::render_json`]).
    pub fn registry(&self) -> TelemetryRegistry {
        let mut r = TelemetryRegistry::new();
        r.counter(
            "poptrie_lookups_total",
            "Longest-prefix-match lookups performed, by execution mode.",
            &[("mode", "scalar")],
            self.lookups_scalar,
        );
        r.counter(
            "poptrie_lookups_total",
            "Longest-prefix-match lookups performed, by execution mode.",
            &[("mode", "batched")],
            self.lookups_batched,
        );
        r.counter(
            "poptrie_lookup_direct_hits_total",
            "Lookups fully resolved by the direct-pointing table (sec. 3.4).",
            &[],
            self.direct_hits,
        );
        r.counter(
            "poptrie_lookup_resolutions_total",
            "Leaf resolutions by ranking mechanism: compressed leafvec (sec. 3.3) or plain vector.",
            &[("kind", "leafvec")],
            self.leafvec_resolutions,
        );
        r.counter(
            "poptrie_lookup_resolutions_total",
            "Leaf resolutions by ranking mechanism: compressed leafvec (sec. 3.3) or plain vector.",
            &[("kind", "vector")],
            self.vector_resolutions,
        );
        let depth_buckets: Vec<(f64, u64)> = self
            .depth
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as f64, n))
            .collect();
        let depth_sum: u64 = self
            .depth
            .iter()
            .enumerate()
            .map(|(i, &n)| i as u64 * n)
            .sum();
        r.histogram(
            "poptrie_lookup_depth",
            "Trie descent depth per lookup: internal nodes visited (0 = direct-table hit; cf. Fig. 11).",
            &[],
            &depth_buckets,
            depth_sum as f64,
        );
        r.counter(
            "poptrie_batch_calls_total",
            "Interleaved batched-lookup chunk invocations.",
            &[],
            self.batch_calls,
        );
        let fill_buckets: Vec<(f64, u64)> = self
            .batch_fill
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as f64, n))
            .collect();
        let fill_sum: u64 = self
            .batch_fill
            .iter()
            .enumerate()
            .map(|(i, &n)| i as u64 * n)
            .sum();
        r.histogram(
            "poptrie_batch_fill",
            "Keys carried per batched-lookup chunk (lane occupancy out of BATCH_LANES).",
            &[],
            &fill_buckets,
            fill_sum as f64,
        );
        r.counter(
            "poptrie_updates_total",
            "Applied route updates, by operation.",
            &[("op", "announce")],
            self.announces,
        );
        r.counter(
            "poptrie_updates_total",
            "Applied route updates, by operation.",
            &[("op", "withdraw")],
            self.withdraws,
        );
        r.counter(
            "poptrie_rebuilds_total",
            "Full FIB recompilations from the RIB.",
            &[],
            self.rebuilds,
        );
        let lat_buckets: Vec<(f64, u64)> = self
            .update_latency
            .iter()
            .enumerate()
            .map(|(i, &n)| (Log2Histogram::upper_bound(i) as f64, n))
            .collect();
        r.histogram(
            "poptrie_update_latency_cycles",
            "Per-update patch latency in TSC cycles, log2 buckets (cf. Table 6, sec. 4.9).",
            &[],
            &lat_buckets,
            self.update_latency_sum as f64,
        );
        r.counter(
            "poptrie_update_direct_replacements_total",
            "Direct-pointing (top-level array) entries rewritten by updates (sec. 4.9).",
            &[],
            self.direct_replacements,
        );
        r.counter(
            "poptrie_update_nodes_total",
            "Internal nodes allocated/freed by incremental updates (sec. 3.5).",
            &[("event", "allocated")],
            self.nodes_allocated,
        );
        r.counter(
            "poptrie_update_nodes_total",
            "Internal nodes allocated/freed by incremental updates (sec. 3.5).",
            &[("event", "freed")],
            self.nodes_freed,
        );
        r.counter(
            "poptrie_update_leaves_total",
            "Leaves allocated/freed by incremental updates (sec. 3.5).",
            &[("event", "allocated")],
            self.leaves_allocated,
        );
        r.counter(
            "poptrie_update_leaves_total",
            "Leaves allocated/freed by incremental updates (sec. 3.5).",
            &[("event", "freed")],
            self.leaves_freed,
        );
        r.counter(
            "poptrie_rcu_publishes_total",
            "FIB snapshots published through the RCU cell.",
            &[],
            self.rcu_publishes,
        );
        r.gauge(
            "poptrie_rcu_outstanding_snapshots_peak",
            "Peak old snapshots still held by readers at publish time.",
            &[],
            self.rcu_outstanding_peak as f64,
        );
        if let Some(st) = &self.structure {
            r.gauge(
                "poptrie_fib_inodes",
                "Live internal nodes (Table 2).",
                &[],
                st.inodes as f64,
            );
            r.gauge(
                "poptrie_fib_leaves",
                "Live leaves (Table 2).",
                &[],
                st.leaves as f64,
            );
            r.gauge(
                "poptrie_fib_direct_slots",
                "Direct-pointing entries (2^s).",
                &[],
                st.direct_slots as f64,
            );
            r.gauge(
                "poptrie_fib_memory_bytes",
                "FIB memory footprint in bytes (Tables 2, 3, 5 accounting).",
                &[],
                st.memory_bytes as f64,
            );
            for (label, f) in [("node", &st.node_buddy), ("leaf", &st.leaf_buddy)] {
                r.gauge(
                    "poptrie_buddy_capacity_slots",
                    "Buddy-allocator managed slots, by array.",
                    &[("array", label)],
                    f.capacity as f64,
                );
                r.gauge(
                    "poptrie_buddy_allocated_slots",
                    "Buddy-allocator allocated slots (with rounding), by array.",
                    &[("array", label)],
                    f.allocated_slots as f64,
                );
                r.gauge(
                    "poptrie_buddy_live_blocks",
                    "Outstanding buddy allocations, by array.",
                    &[("array", label)],
                    f.live_blocks as f64,
                );
                r.gauge(
                    "poptrie_buddy_slack_slots",
                    "Slots lost to rounding and fragmentation, by array.",
                    &[("array", label)],
                    f.slack as f64,
                );
                r.gauge(
                    "poptrie_buddy_free_spans",
                    "Maximal contiguous free spans, by array.",
                    &[("array", label)],
                    f.free_spans as f64,
                );
                r.gauge(
                    "poptrie_buddy_largest_free_span_slots",
                    "Largest contiguous free span in slots, by array.",
                    &[("array", label)],
                    f.largest_free_span as f64,
                );
            }
        }
        r
    }

    /// Render as Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry().render_prometheus()
    }

    /// Render as a flat JSON object.
    pub fn render_json(&self) -> String {
        self.registry().render_json()
    }
}
