//! Converge a running FIB onto a new RIB snapshot via route diffing.
//!
//! Operators often receive full RIB snapshots (hourly RouteViews dumps,
//! config pushes) rather than update streams. `RadixTree::diff` computes
//! the minimal announce/withdraw batch between two snapshots, and the
//! §3.5 incremental update path applies it — orders of magnitude cheaper
//! than recompiling when the tables are mostly identical.
//!
//! ```text
//! cargo run --release --example table_diff
//! ```

use poptrie_suite::poptrie::PoptrieConfig;
use poptrie_suite::tablegen::{synthesize_update_stream, TableKind, TableSpec, UpdateEvent};
use poptrie_suite::traffic::Xorshift128;
use poptrie_suite::Fib;
use std::time::Instant;

fn main() {
    // Snapshot A: this hour's table.
    let table = TableSpec {
        name: "diff-demo".into(),
        prefixes: 120_000,
        next_hops: 32,
        kind: TableKind::RouteViews,
    }
    .generate();
    let snapshot_a = table.to_rib();

    // Snapshot B: the same table an hour of BGP churn later.
    let mut snapshot_b = snapshot_a.clone();
    for ev in synthesize_update_stream(&table, 4_000, 1_200) {
        match ev {
            UpdateEvent::Announce(p, nh) => {
                snapshot_b.insert(p, nh);
            }
            UpdateEvent::Withdraw(p) => {
                snapshot_b.remove(p);
            }
        }
    }

    // The running FIB serves snapshot A.
    let cfg = PoptrieConfig::new()
        .direct_bits(18)
        .aggregate(false)
        .build()
        .unwrap();
    let mut fib = Fib::compile(snapshot_a.clone(), cfg);

    // Converge via diff + incremental updates.
    let start = Instant::now();
    let diff = snapshot_a.diff(&snapshot_b);
    let diff_time = start.elapsed();
    println!(
        "diff of {}-route snapshots: {} added, {} removed, {} changed ({:.2} ms)",
        snapshot_a.len(),
        diff.added.len(),
        diff.removed.len(),
        diff.changed.len(),
        diff_time.as_secs_f64() * 1e3
    );

    let start = Instant::now();
    for (p, _) in &diff.removed {
        fib.remove(*p).unwrap();
    }
    for (p, nh) in &diff.added {
        fib.insert(*p, *nh).unwrap();
    }
    for (p, _, nh) in &diff.changed {
        fib.insert(*p, *nh).unwrap();
    }
    let apply_time = start.elapsed();

    // Compare against the alternative: recompiling from scratch.
    let start = Instant::now();
    let recompiled = Fib::compile(snapshot_b.clone(), cfg);
    let recompile_time = start.elapsed();

    println!(
        "apply {} updates incrementally: {:.2} ms ({:.2} us/update)",
        diff.len(),
        apply_time.as_secs_f64() * 1e3,
        apply_time.as_secs_f64() * 1e6 / diff.len() as f64
    );
    println!(
        "recompile from scratch instead: {:.2} ms ({:.1}x slower than diff+apply)",
        recompile_time.as_secs_f64() * 1e3,
        recompile_time.as_secs_f64() / (diff_time + apply_time).as_secs_f64()
    );

    // Both paths must agree everywhere.
    let mut rng = Xorshift128::new(0xD1FF);
    for _ in 0..200_000 {
        let key = rng.next_u32();
        assert_eq!(fib.lookup(key), recompiled.lookup(key));
    }
    // And the converged RIB is route-identical to snapshot B.
    assert!(fib.rib().diff(&snapshot_b).is_empty());
    println!("converged FIB verified identical to a fresh compilation of snapshot B");
}
