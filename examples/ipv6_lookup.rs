//! IPv6 longest-prefix match with Poptrie (§4.10).
//!
//! The same Poptrie code is generic over the key width: `Poptrie<u128>`
//! walks 6-bit chunks of a 128-bit address. This example builds the
//! paper's tier-1 IPv6 table, compares direct-pointing sizes, and
//! cross-checks against the IPv6 DXR baseline.
//!
//! ```text
//! cargo run --release --example ipv6_lookup
//! ```

use poptrie_suite::baselines::Dxr6;
use poptrie_suite::tablegen::ipv6_dataset;
use poptrie_suite::traffic::random_v6_in_2000;
use poptrie_suite::{Lpm, Poptrie};
use std::net::Ipv6Addr;
use std::time::Instant;

fn main() {
    let table = ipv6_dataset("REAL-Tier1-A-v6");
    let rib = table.to_rib();
    println!("IPv6 table: {} prefixes (paper: 20,440)", table.len());

    // Direct pointing helps IPv6 too (Table 6), despite being designed
    // for the IPv4 /24 spike.
    for s in [0u8, 16, 18] {
        let start = Instant::now();
        let fib: Poptrie<u128> = Poptrie::builder().direct_bits(s).build(&rib);
        let compile = start.elapsed();
        let st = fib.stats();
        println!(
            "  s={s:<2}  {} inodes  {} leaves  {:>5} KiB  compiled in {:.2} ms",
            st.inodes,
            st.leaves,
            st.memory_bytes / 1024,
            compile.as_secs_f64() * 1e3
        );
    }

    let fib: Poptrie<u128> = Poptrie::builder().direct_bits(18).build(&rib);
    let dxr = Dxr6::from_rib(&rib, 18).expect("IPv6 DXR within limits");

    // Look up a few addresses and show both algorithms agreeing.
    println!("\nsample lookups (Poptrie18 / D18R-IPv6):");
    for addr in random_v6_in_2000(42, 5) {
        let a = fib.lookup(addr);
        let b = dxr.lookup(addr);
        assert_eq!(a, b, "algorithms disagree on {addr:#x}");
        println!("  {} -> {:?}", Ipv6Addr::from(addr), a);
    }

    // A quick rate comparison on random addresses in 2000::/8.
    const N: u64 = 2_000_000;
    for (name, lookup) in [
        (
            "Poptrie18",
            Box::new(|k| fib.lookup(k)) as Box<dyn Fn(u128) -> Option<u16>>,
        ),
        ("D18R-IPv6", Box::new(|k| dxr.lookup(k))),
    ] {
        let start = Instant::now();
        let mut acc = 0u64;
        for addr in random_v6_in_2000(7, N) {
            acc = acc.wrapping_add(lookup(addr).unwrap_or(0) as u64);
        }
        std::hint::black_box(acc);
        let dt = start.elapsed().as_secs_f64();
        println!(
            "{name}: {:.1} Mlps ({} bytes)",
            N as f64 / dt / 1e6,
            if name.starts_with("Poptrie") {
                Lpm::memory_bytes(&fib)
            } else {
                Lpm::memory_bytes(&dxr)
            }
        );
    }
}
