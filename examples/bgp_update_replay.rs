//! BGP update replay against a live, concurrently-read FIB.
//!
//! Reproduces the §3.5/§4.9 operating model: a control-plane thread
//! applies a BGP update stream through the incremental-update path while
//! data-plane threads keep doing lock-free lookups — readers are never
//! blocked and always see a consistent FIB.
//!
//! ```text
//! cargo run --release --example bgp_update_replay
//! ```

use poptrie_suite::poptrie::sync::{RouteUpdate, SharedFib};
use poptrie_suite::tablegen::{self, TableKind, TableSpec, UpdateEvent};
use poptrie_suite::traffic::Xorshift128;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // Base table + synthetic update stream with the paper's §4.9
    // announce/withdraw mix, scaled down for a demo.
    let base = TableSpec {
        name: "replay-demo".into(),
        prefixes: 100_000,
        next_hops: 64,
        kind: TableKind::RouteViews,
    }
    .generate();
    let stream = tablegen::synthesize_update_stream(&base, 9_000, 2_600);
    println!(
        "base table: {} routes; update stream: {} events",
        base.len(),
        stream.len()
    );

    let cfg = poptrie_suite::poptrie::PoptrieConfig::new()
        .direct_bits(18)
        .build()
        .unwrap();
    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(base.to_rib(), cfg));
    let stop = Arc::new(AtomicBool::new(false));
    let lookups = Arc::new(AtomicU64::new(0));

    // Data plane: two reader threads doing lock-free lookups throughout.
    let readers: Vec<_> = (0..2)
        .map(|tid| {
            let fib = Arc::clone(&fib);
            let stop = Arc::clone(&stop);
            let lookups = Arc::clone(&lookups);
            std::thread::spawn(move || {
                let mut rng = Xorshift128::new(0xDA7A + tid);
                let mut acc = 0u64;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..1024 {
                        acc = acc.wrapping_add(fib.lookup(rng.next_u32()).unwrap_or(0) as u64);
                    }
                    n += 1024;
                }
                lookups.fetch_add(n, Ordering::Relaxed);
                std::hint::black_box(acc);
            })
        })
        .collect();

    // Control plane: replay the stream in bursts of 64 updates (one
    // published snapshot per burst, like real BGP message batching).
    let start = Instant::now();
    for burst in stream.chunks(64) {
        fib.update_batch(burst.iter().map(|ev| match *ev {
            UpdateEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
            UpdateEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
        }));
    }
    let dt = start.elapsed();

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader");
    }

    let st = fib.stats();
    println!(
        "replayed {} updates in {:.2} ms ({:.2} us/update incl. snapshot publication)",
        st.updates,
        dt.as_secs_f64() * 1e3,
        dt.as_secs_f64() * 1e6 / st.updates as f64
    );
    println!(
        "update work: {} direct slots, {} nodes built, {} leaves built",
        st.direct_replacements, st.nodes_allocated, st.leaves_allocated
    );
    println!(
        "data plane sustained {} lookups concurrently, never blocked",
        lookups.load(Ordering::Relaxed)
    );
}
