//! Compile once, serialize, and reload a FIB — the fast-restart path.
//!
//! Routers restart far more often than routing tables change shape; the
//! binary FIB format (`poptrie::serial`) lets a forwarding process come
//! back up without recompiling half a million routes.
//!
//! ```text
//! cargo run --release --example fib_persistence
//! ```

use poptrie_suite::tablegen::{TableKind, TableSpec};
use poptrie_suite::{Lpm, Poptrie};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size production-shaped table.
    let table = TableSpec {
        name: "persistence-demo".into(),
        prefixes: 150_000,
        next_hops: 32,
        kind: TableKind::Real,
    }
    .generate();
    let rib = table.to_rib();

    // Cold path: full compilation.
    let start = Instant::now();
    let fib: Poptrie<u32> = Poptrie::builder().direct_bits(18).build(&rib);
    let compile = start.elapsed();

    // Persist.
    let path = std::env::temp_dir().join("poptrie-demo.fib");
    let start = Instant::now();
    let bytes = fib.to_bytes();
    std::fs::write(&path, &bytes)?;
    let save = start.elapsed();

    // Warm path: load + validate instead of recompiling.
    let start = Instant::now();
    let raw = std::fs::read(&path)?;
    let loaded: Poptrie<u32> = Poptrie::from_bytes(&raw)?;
    let load = start.elapsed();

    println!("routes:        {}", table.len());
    println!(
        "compile:       {:>8.2} ms   ({} bytes in memory)",
        compile.as_secs_f64() * 1e3,
        Lpm::memory_bytes(&fib)
    );
    println!(
        "serialize:     {:>8.2} ms   ({} bytes on disk)",
        save.as_secs_f64() * 1e3,
        bytes.len()
    );
    println!(
        "load+validate: {:>8.2} ms   ({:.1}x faster than compiling)",
        load.as_secs_f64() * 1e3,
        compile.as_secs_f64() / load.as_secs_f64()
    );

    // The loaded FIB is semantically identical: same effective ranges.
    assert_eq!(loaded.ranges(), fib.ranges());
    println!("range lists identical: loaded FIB is semantically equal");

    std::fs::remove_file(&path).ok();
    Ok(())
}
