//! Quickstart: build a FIB, look up addresses, apply route updates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use poptrie_suite::poptrie::PoptrieConfig;
use poptrie_suite::{Fib, Lpm, Poptrie, Prefix, RadixTree};

fn main() {
    // --- 1. Compile-once usage: RIB -> Poptrie ---------------------------
    //
    // The paper's model (§3): routes live in a RIB (binary radix tree);
    // Poptrie is the compiled FIB the data plane reads.
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for (prefix, next_hop) in [
        ("0.0.0.0/0", 1u16),     // default route -> upstream
        ("10.0.0.0/8", 2),       // corporate aggregate
        ("10.20.0.0/16", 3),     // one site
        ("10.20.30.0/24", 4),    // one rack
        ("192.0.2.0/24", 5),     // a peering LAN
        ("198.51.100.42/32", 6), // a host route
    ] {
        rib.insert(prefix.parse().unwrap(), next_hop);
    }

    // s = 18 direct pointing and route aggregation, the paper's
    // best-performing configuration (Poptrie18).
    let fib: Poptrie<u32> = Poptrie::builder().direct_bits(18).build(&rib);

    println!("compiled FIB: {:?}", fib.stats());
    for (addr, label) in [
        (0x0A14_1E07u32, "10.20.30.7   (rack route)"),
        (0x0A14_FF07, "10.20.255.7  (site route)"),
        (0x0A40_0001, "10.64.0.1    (aggregate)"),
        (0xC000_0280, "192.0.2.128  (peering LAN)"),
        (0xC633_642A, "198.51.100.42 (host route)"),
        (0x0808_0808, "8.8.8.8      (default)"),
    ] {
        println!("  {label} -> next hop {:?}", fib.lookup(addr));
    }

    // --- 2. Incremental usage: a Fib owns RIB + Poptrie together ---------
    //
    // Route changes patch only the affected subtree (§3.5), through the
    // buddy allocator — no full recompilation.
    let cfg = PoptrieConfig::new().direct_bits(18).build().unwrap();
    let mut fib: Fib<u32> = Fib::with_config(cfg);
    fib.insert("203.0.113.0/24".parse::<Prefix<u32>>().unwrap(), 7)
        .unwrap();
    assert_eq!(fib.lookup(0xCB00_7101), Some(7));

    fib.insert("203.0.113.128/25".parse::<Prefix<u32>>().unwrap(), 8)
        .unwrap();
    assert_eq!(fib.lookup(0xCB00_71FF), Some(8)); // more specific wins

    fib.remove("203.0.113.128/25".parse::<Prefix<u32>>().unwrap())
        .unwrap();
    assert_eq!(fib.lookup(0xCB00_71FF), Some(7)); // back to the /24

    let st = fib.stats();
    println!(
        "\nincremental updates: {} updates, {} nodes built, {} nodes freed",
        st.updates, st.nodes_allocated, st.nodes_freed
    );
    println!("memory: {} bytes", Lpm::memory_bytes(fib.poptrie()));
}
