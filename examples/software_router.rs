//! A miniature software router, dataplane and control plane.
//!
//! The scenario the paper's introduction motivates: an NFV-style software
//! router on a commodity CPU, forwarding packets at wire rate with the
//! routing table lookup as the hot path. This example runs the full
//! `poptrie-engine` pipeline — a synthetic ingress feeding packet batches
//! into per-worker bounded queues, pinned workers looking each batch up
//! against an RCU snapshot of a shared Poptrie FIB, and a concurrent BGP
//! session pushing route updates through the single control-plane
//! writer — then prints per-interface counters, the achieved rate, and
//! the engine's own accounting.
//!
//! ```text
//! cargo run --release --example software_router
//! ```
//!
//! With the `telemetry` feature the router also behaves like a production
//! data plane with a metrics endpoint, dumping the full Prometheus-format
//! page at shutdown:
//!
//! ```text
//! cargo run --release --features telemetry --example software_router
//! ```

use poptrie_suite::poptrie::sync::SharedFib;
use poptrie_suite::poptrie::PoptrieConfig;
use poptrie_suite::prelude::{Engine, EngineConfig};
use poptrie_suite::tablegen::{TableKind, TableSpec};
use poptrie_suite::traffic::Xorshift128;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An egress interface with its counters. Updated from the engine's
/// `on_batch` hook, which runs on the worker threads — hence atomics.
#[derive(Debug, Default)]
struct Interface {
    packets: AtomicU64,
    bytes: AtomicU64,
}

const WORKERS: usize = 2;
const BATCH: usize = 1024;
const BATCHES: u64 = 4_000;

fn main() {
    // A realistic mid-size table: 50K routes across 24 next hops
    // (interfaces), production-router shape (IGP deep routes included).
    let table = TableSpec {
        name: "router-demo".into(),
        prefixes: 50_000,
        next_hops: 24,
        kind: TableKind::Real,
    }
    .generate();
    let config = PoptrieConfig::new()
        .direct_bits(18)
        .build()
        .expect("config");
    let fib = Arc::new(SharedFib::compile(table.to_rib(), config));
    println!(
        "FIB: {} routes, {} next hops, version {} ({:?})",
        table.len(),
        table.next_hop_count(),
        fib.version(),
        fib.snapshot().stats()
    );

    // Interface 0 is the drop counter (no matching route).
    let interfaces: Arc<Vec<Interface>> = Arc::new((0..25).map(|_| Interface::default()).collect());
    let engine = Engine::start(
        Arc::clone(&fib),
        EngineConfig::new(WORKERS).on_batch({
            let interfaces = Arc::clone(&interfaces);
            Arc::new(move |_worker, keys: &[u32], out, _version| {
                for (dst, &egress) in keys.iter().zip(out) {
                    // IPv4 minimum frame is 64 bytes; synthetic size mix.
                    let ifc = &interfaces[egress as usize];
                    ifc.packets.fetch_add(1, Ordering::Relaxed);
                    ifc.bytes
                        .fetch_add(64 + (dst & 0x3FF) as u64, Ordering::Relaxed);
                }
            })
        }),
    );

    // The BGP session: a route source on its own thread, announcing and
    // withdrawing a flapping prefix through the control plane while the
    // dataplane forwards. Each send is non-blocking; the engine's writer
    // coalesces each burst into one published snapshot.
    let control = engine.control();
    let bgp = std::thread::spawn(move || {
        let flap: poptrie_suite::Prefix<u32> = "203.0.113.0/24".parse().unwrap();
        let mut published = 0u64;
        for round in 0..50 {
            let sent = if round % 2 == 0 {
                control.announce(flap, 7)
            } else {
                control.withdraw(flap)
            };
            if sent.is_ok() {
                published += 1;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        published
    });

    // The ingress: pre-generated batches submitted round-robin. A full
    // queue is backpressure — the batch is shed and counted, exactly
    // what a NIC rx ring does when the host cannot keep up.
    let ingress = engine.ingress();
    let mut rng = Xorshift128::new(0xDA7A);
    let pool: Vec<Arc<[u32]>> = (0..64)
        .map(|_| {
            (0..BATCH)
                .map(|_| rng.next_u32())
                .collect::<Vec<_>>()
                .into()
        })
        .collect();
    let start = Instant::now();
    for i in 0..BATCHES {
        if ingress
            .try_submit(Arc::clone(&pool[i as usize % pool.len()]))
            .is_err()
        {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    let report = engine.shutdown(Duration::from_secs(10));
    let dt = start.elapsed().as_secs_f64();
    let flaps = bgp.join().expect("BGP thread");

    let forwarded: u64 = interfaces[1..]
        .iter()
        .map(|i| i.packets.load(Ordering::Relaxed))
        .sum();
    println!(
        "\n{WORKERS} workers forwarded {forwarded} packets in {:.2} ms ({:.1} Mpps aggregate)",
        dt * 1e3,
        report.packets as f64 / dt / 1e6
    );
    println!(
        "engine: {} batches served, {} shed at ingress, {} snapshots published \
         ({} route events sent, {} coalesced away)",
        report.batches, report.dropped_batches, report.publishes, flaps, report.updates_coalesced
    );
    println!(
        "shutdown: drained_clean={}, leaked_threads={}, final FIB version {}",
        report.drained_clean,
        report.leaked_threads,
        fib.version()
    );
    println!(
        "dropped (no route): {}",
        interfaces[0].packets.load(Ordering::Relaxed)
    );
    println!("\nbusiest egress interfaces:");
    let mut busiest: Vec<(usize, u64, u64)> = interfaces
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, ifc)| {
            (
                i,
                ifc.packets.load(Ordering::Relaxed),
                ifc.bytes.load(Ordering::Relaxed),
            )
        })
        .collect();
    busiest.sort_by_key(|&(_, packets, _)| std::cmp::Reverse(packets));
    for (idx, packets, bytes) in busiest.iter().take(5) {
        println!("  if{idx:<2}  {packets:>9} packets  {bytes:>12} bytes");
    }

    // Shutdown dump: the full metrics page a scraper would have fetched.
    #[cfg(feature = "telemetry")]
    {
        use poptrie_suite::poptrie::telemetry;
        println!("\n# final telemetry (Prometheus text format)");
        print!(
            "{}",
            telemetry::snapshot()
                .attach_structure(&fib.snapshot())
                .render_prometheus()
        );
    }
}
