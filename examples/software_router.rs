//! A miniature software router data plane.
//!
//! The scenario the paper's introduction motivates: an NFV-style software
//! router on a commodity CPU, forwarding packets at wire rate with the
//! routing table lookup as the hot path. This example wires a Poptrie FIB
//! between a synthetic ingress (traffic patterns from `poptrie-traffic`)
//! and a set of egress interfaces, then reports per-interface counters
//! and the achieved lookup rate.
//!
//! ```text
//! cargo run --release --example software_router
//! ```
//!
//! With the `telemetry` feature the router also behaves like a production
//! data plane with a metrics endpoint: a compact telemetry line after
//! every traffic round (the periodic scrape) and a full Prometheus-format
//! dump at shutdown:
//!
//! ```text
//! cargo run --release --features telemetry --example software_router
//! ```

use poptrie_suite::tablegen::{TableKind, TableSpec};
use poptrie_suite::traffic::Xorshift128;
use poptrie_suite::{Lpm, Poptrie};
use std::time::Instant;

/// An egress interface with its counters.
#[derive(Debug, Default, Clone)]
struct Interface {
    packets: u64,
    bytes: u64,
}

fn main() {
    // A realistic mid-size table: 50K routes across 24 next hops
    // (interfaces), production-router shape (IGP deep routes included).
    let table = TableSpec {
        name: "router-demo".into(),
        prefixes: 50_000,
        next_hops: 24,
        kind: TableKind::Real,
    }
    .generate();
    let rib = table.to_rib();
    let fib: Poptrie<u32> = Poptrie::builder().direct_bits(18).build(&rib);
    println!(
        "FIB: {} routes, {} next hops, {} bytes ({:?})",
        table.len(),
        table.next_hop_count(),
        Lpm::memory_bytes(&fib),
        fib.stats()
    );

    // Interface 0 is the drop counter (no matching route).
    let mut interfaces = vec![Interface::default(); 25];
    let mut rng = Xorshift128::new(0xDA7A);
    const PACKETS: u64 = 4_000_000;
    const ROUNDS: u64 = 4;

    let start = Instant::now();
    for round in 1..=ROUNDS {
        for _ in 0..PACKETS / ROUNDS {
            let dst = rng.next_u32();
            // IPv4 minimum frame: 64 bytes on the wire; synthetic size mix.
            let size = 64 + (dst & 0x3FF) as u64;
            let egress = fib.lookup_raw(dst) as usize; // 0 = no route
            let ifc = &mut interfaces[egress];
            ifc.packets += 1;
            ifc.bytes += size;
        }
        // The periodic scrape a production router would expose: one
        // compact line per traffic round.
        #[cfg(feature = "telemetry")]
        {
            use poptrie_suite::poptrie::telemetry;
            let t = telemetry::snapshot();
            let deepest = t.depth.iter().rposition(|&n| n > 0).unwrap_or(0);
            println!(
                "[telemetry] round {round}/{ROUNDS}: {} lookups, {} direct hits ({:.1}%), max depth {}",
                t.lookups_total(),
                t.direct_hits,
                100.0 * t.direct_hits as f64 / t.lookups_total().max(1) as f64,
                deepest,
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = round;
    }
    let dt = start.elapsed().as_secs_f64();

    let forwarded: u64 = interfaces[1..].iter().map(|i| i.packets).sum();
    println!(
        "\nforwarded {forwarded} / {PACKETS} packets in {:.2} ms ({:.1} Mpps lookup rate)",
        dt * 1e3,
        PACKETS as f64 / dt / 1e6
    );
    println!("dropped (no route): {}", interfaces[0].packets);
    println!("\nbusiest egress interfaces:");
    let mut busiest: Vec<(usize, &Interface)> = interfaces.iter().enumerate().skip(1).collect();
    busiest.sort_by_key(|(_, i)| std::cmp::Reverse(i.packets));
    for (idx, ifc) in busiest.iter().take(5) {
        println!(
            "  if{:<2}  {:>9} packets  {:>12} bytes",
            idx, ifc.packets, ifc.bytes
        );
    }

    // Shutdown dump: the full metrics page a scraper would have fetched.
    #[cfg(feature = "telemetry")]
    {
        use poptrie_suite::poptrie::telemetry;
        println!("\n# final telemetry (Prometheus text format)");
        print!(
            "{}",
            telemetry::snapshot()
                .attach_structure(&fib)
                .render_prometheus()
        );
    }
}
