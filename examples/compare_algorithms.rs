//! Build every algorithm of the paper's evaluation on one table and
//! compare memory, build time and lookup rate — a miniature Table 3.
//!
//! ```text
//! cargo run --release --example compare_algorithms [n_routes]
//! ```

use poptrie_suite::baselines::{Dxr, DxrConfig, Sail, TreeBitmap4, TreeBitmap64};
use poptrie_suite::tablegen::{TableKind, TableSpec};
use poptrie_suite::traffic::Xorshift128;
use poptrie_suite::{Lpm, Poptrie};
use std::time::Instant;

fn main() {
    let n_routes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let table = TableSpec {
        name: "compare-demo".into(),
        prefixes: n_routes,
        next_hops: 32,
        kind: TableKind::Real,
    }
    .generate();
    let rib = table.to_rib();
    println!(
        "table: {} routes, {} next hops\n",
        table.len(),
        table.next_hop_count()
    );

    // Build every structure, timing compilation.
    let mut algos: Vec<(String, Box<dyn Lpm<u32>>, f64)> = Vec::new();
    let add =
        |fib: Box<dyn Lpm<u32>>, ms: f64, algos: &mut Vec<(String, Box<dyn Lpm<u32>>, f64)>| {
            algos.push((fib.name(), fib, ms));
        };
    macro_rules! timed {
        ($build:expr) => {{
            let start = Instant::now();
            let fib = $build;
            (
                Box::new(fib) as Box<dyn Lpm<u32>>,
                start.elapsed().as_secs_f64() * 1e3,
            )
        }};
    }
    let (f, ms) = timed!(rib.clone());
    add(f, ms, &mut algos);
    let (f, ms) = timed!(TreeBitmap4::from_rib(&rib));
    add(f, ms, &mut algos);
    let (f, ms) = timed!(TreeBitmap64::from_rib(&rib));
    add(f, ms, &mut algos);
    let (f, ms) = timed!(Sail::from_rib(&rib).expect("within limits"));
    add(f, ms, &mut algos);
    let (f, ms) = timed!(Dxr::from_rib(&rib, DxrConfig::d16r()).expect("within limits"));
    add(f, ms, &mut algos);
    let (f, ms) = timed!(Dxr::from_rib(&rib, DxrConfig::d18r()).expect("within limits"));
    add(f, ms, &mut algos);
    let (f, ms) = timed!(Poptrie::builder().direct_bits(16).build(&rib));
    add(f, ms, &mut algos);
    let (f, ms) = timed!(Poptrie::builder().direct_bits(18).build(&rib));
    add(f, ms, &mut algos);

    // Cross-validate: every algorithm must agree with the RIB on a large
    // random sample (the paper validated over the whole IPv4 space).
    let mut rng = Xorshift128::new(0xC0FFEE);
    for _ in 0..200_000 {
        let key = rng.next_u32();
        let want = Lpm::lookup(&rib, key);
        for (name, fib, _) in &algos {
            assert_eq!(fib.lookup(key), want, "{name} disagrees at {key:#010x}");
        }
    }
    println!("cross-validation passed: all algorithms agree on 200K random keys\n");

    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "algorithm", "mem [KiB]", "build [ms]", "rate [Mlps]"
    );
    const N: u64 = 4_000_000;
    for (name, fib, build_ms) in &algos {
        let mut rng = Xorshift128::new(0xBEEF);
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..N {
            acc = acc.wrapping_add(fib.lookup(rng.next_u32()).unwrap_or(0) as u64);
        }
        std::hint::black_box(acc);
        let rate = N as f64 / start.elapsed().as_secs_f64() / 1e6;
        println!(
            "{:<22} {:>10} {:>12.2} {:>12.1}",
            name,
            fib.memory_bytes() / 1024,
            build_ms,
            rate
        );
    }
}
