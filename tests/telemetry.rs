//! Differential accounting test for the runtime telemetry layer.
//!
//! Runs a fully scripted workload — known numbers of lookups (scalar and
//! batched), announces, withdraws and rebuilds, on both `u32` and `u128`
//! keys — and asserts the process-wide counters reconcile with the script
//! *exactly*: no sampling, no slop, every event accounted for once.
//!
//! Without `--features telemetry` this file compiles to an empty test
//! binary: the counters do not exist, which is itself the property the CI
//! symbol-absence check asserts on the release artifacts.
//!
//! All exact-equality assertions live in ONE `#[test]` function. The
//! counters are process-global and the harness runs tests in parallel
//! threads, so a second test in this binary touching a `Poptrie` would
//! race the totals. Keep it that way.
#![cfg(feature = "telemetry")]

use poptrie_suite::poptrie::sync::SharedFib;
use poptrie_suite::poptrie::telemetry;
use poptrie_suite::poptrie::{PoptrieConfig, BATCH_LANES};
use poptrie_suite::{Fib, NextHop, Prefix};

fn cfg16() -> PoptrieConfig {
    PoptrieConfig::new()
        .direct_bits(16)
        .aggregate(false)
        .build()
        .unwrap()
}

/// The scripted ground truth, accumulated while driving the workload.
#[derive(Default)]
struct Script {
    scalar: u64,
    batched: u64,
    batch_calls: u64,
    announces: u64,
    withdraws: u64,
    rebuilds: u64,
    rcu_publishes: u64,
}

impl Script {
    fn insert<K: poptrie_suite::rib::Bits>(&mut self, fib: &mut Fib<K>, prefix: &str, nh: NextHop)
    where
        Prefix<K>: std::str::FromStr,
        <Prefix<K> as std::str::FromStr>::Err: std::fmt::Debug,
    {
        let p: Prefix<K> = prefix.parse().expect("prefix");
        // Only RIB-changing announces are counted (re-announcing the
        // current next hop is a documented no-op).
        if fib.rib().get(p) != Some(&nh) {
            self.announces += 1;
        }
        fib.insert(p, nh).unwrap();
    }

    fn remove<K: poptrie_suite::rib::Bits>(&mut self, fib: &mut Fib<K>, prefix: &str)
    where
        Prefix<K>: std::str::FromStr,
        <Prefix<K> as std::str::FromStr>::Err: std::fmt::Debug,
    {
        let p: Prefix<K> = prefix.parse().expect("prefix");
        if fib.remove(p).unwrap().changed() {
            self.withdraws += 1;
        }
    }

    fn lookups<K: poptrie_suite::rib::Bits>(&mut self, fib: &Fib<K>, keys: &[K]) {
        for &k in keys {
            let _ = fib.lookup(k);
        }
        self.scalar += keys.len() as u64;
        let mut out = vec![0; keys.len()];
        fib.poptrie().lookup_batch(keys, &mut out);
        self.batched += keys.len() as u64;
        self.batch_calls += keys.len().div_ceil(BATCH_LANES) as u64;
    }
}

#[test]
fn counters_reconcile_exactly_with_scripted_workload() {
    telemetry::reset();
    let mut script = Script::default();

    // ---- u32 phase: a small table spanning direct-only, shallow and
    // deep prefixes (direct bits 16 -> /24 resolves at depth 2).
    let mut v4: Fib<u32> = Fib::with_config(cfg16());
    script.insert(&mut v4, "0.0.0.0/0", 1);
    script.insert(&mut v4, "10.0.0.0/8", 2);
    script.insert(&mut v4, "10.128.0.0/9", 3);
    script.insert(&mut v4, "192.0.2.0/24", 4);
    script.insert(&mut v4, "192.0.2.128/25", 5);
    script.insert(&mut v4, "198.51.100.0/28", 6);
    script.insert(&mut v4, "198.51.100.0/28", 6); // no-op re-announce
    script.insert(&mut v4, "198.51.100.0/28", 7); // next-hop change: counts
    script.remove(&mut v4, "10.128.0.0/9");
    script.remove(&mut v4, "10.128.0.0/9"); // already gone: not counted
    script.remove(&mut v4, "203.0.113.0/24"); // never existed: not counted

    // Keys chosen to exercise every script route plus the default; count
    // deliberately not a multiple of BATCH_LANES so one chunk is partial.
    let mut v4_keys = Vec::new();
    for i in 0..(3 * BATCH_LANES as u32 + 3) {
        v4_keys.push(match i % 5 {
            0 => 0x0A00_0000 + i,        // 10.0.0.0/8
            1 => 0xC000_0200 + (i % 96), // 192.0.2.0/24 (+/25 half)
            2 => 0xC633_6400 + (i % 16), // 198.51.100.0/28
            3 => 0xCB00_7100 + i,        // 203.0.113.x -> default route
            _ => i,                      // 0.x.y.z -> default route
        });
    }
    script.lookups(&v4, &v4_keys);
    v4.rebuild();
    script.rebuilds += 1;

    // ---- u128 phase: same shape on IPv6-width keys.
    let mut v6: Fib<u128> = Fib::with_config(cfg16());
    script.insert(&mut v6, "::/0", 1);
    script.insert(&mut v6, "2001:db8::/32", 2);
    script.insert(&mut v6, "2001:db8:aa::/48", 3);
    script.insert(&mut v6, "2001:db8:aa:bb::/64", 4);
    script.insert(&mut v6, "2001:db8:aa:bb::/64", 4); // no-op re-announce
    script.remove(&mut v6, "2001:db8:aa::/48");
    script.remove(&mut v6, "fe80::/10"); // never existed: not counted
    let base: u128 = "2001:db8::".parse::<std::net::Ipv6Addr>().unwrap().into();
    let mut v6_keys = Vec::new();
    for i in 0..(2 * BATCH_LANES as u128 + 1) {
        v6_keys.push(match i % 3 {
            0 => base + i,                    // 2001:db8::/32
            1 => base + (0xbbu128 << 64) + i, // 2001:db8:0:bb::... still /32
            _ => i,                           // ::x -> default route
        });
    }
    script.lookups(&v6, &v6_keys);
    v6.rebuild();
    script.rebuilds += 1;

    // ---- RCU phase: publishes = every insert call + applied withdraws.
    let shared: SharedFib<u32> = SharedFib::with_config(cfg16());
    let parked = shared.snapshot(); // hold one snapshot across publishes
    shared.insert("0.0.0.0/0".parse().unwrap(), 1).unwrap();
    script.announces += 1;
    script.rcu_publishes += 1;
    shared.insert("0.0.0.0/0".parse().unwrap(), 1).unwrap(); // no-op announce...
    script.rcu_publishes += 1; // ...but SharedFib still publishes
    shared.insert("172.16.0.0/12".parse().unwrap(), 2).unwrap();
    script.announces += 1;
    script.rcu_publishes += 1;
    assert!(shared
        .remove("172.16.0.0/12".parse().unwrap())
        .unwrap()
        .changed());
    script.withdraws += 1;
    script.rcu_publishes += 1;
    assert!(!shared
        .remove("172.16.0.0/12".parse().unwrap())
        .unwrap()
        .changed());
    // gone already: no publish
    drop(parked);

    // ---- reconciliation: every total matches the script exactly.
    let t = telemetry::snapshot();
    assert_eq!(t.lookups_scalar, script.scalar, "scalar lookups");
    assert_eq!(t.lookups_batched, script.batched, "batched lookups");
    assert_eq!(t.batch_calls, script.batch_calls, "batch chunk calls");
    assert_eq!(
        t.batch_fill.iter().sum::<u64>(),
        script.batch_calls,
        "batch fill histogram mass == chunk calls"
    );
    // Two partial chunks were scripted (3 spare u32 keys, 1 spare u128).
    assert_eq!(t.batch_fill[3], 1, "one 3-key partial chunk");
    assert_eq!(t.batch_fill[1], 1, "one 1-key partial chunk");
    assert_eq!(
        t.depth.iter().sum::<u64>(),
        t.lookups_total(),
        "depth histogram mass == lookups"
    );
    assert_eq!(
        t.direct_hits + t.leafvec_resolutions + t.vector_resolutions,
        t.lookups_total(),
        "every lookup resolved exactly once"
    );
    assert_eq!(t.depth[0], t.direct_hits, "depth 0 == direct hits");
    // /24, /25 and /28 routes sit below direct bits 16, so some scripted
    // keys must have descended the trie.
    assert!(t.leafvec_resolutions + t.vector_resolutions > 0, "descents");
    assert_eq!(t.announces, script.announces, "applied announces");
    assert_eq!(t.withdraws, script.withdraws, "applied withdraws");
    assert_eq!(t.rebuilds, script.rebuilds, "rebuilds");
    assert_eq!(
        t.update_latency.iter().sum::<u64>(),
        script.announces + script.withdraws + script.rebuilds,
        "latency histogram mass == applied updates + rebuilds"
    );
    assert_eq!(t.rcu_publishes, script.rcu_publishes, "RCU publishes");
    assert_eq!(t.rcu_outstanding_peak, 1, "one parked snapshot at peak");
    // Structural work balances: the fibs are still alive, so allocations
    // can exceed frees, never the reverse.
    assert!(t.nodes_allocated >= t.nodes_freed, "node balance");
    assert!(t.leaves_allocated >= t.leaves_freed, "leaf balance");

    // The exposition layers agree with the snapshot they render.
    let prom = t.render_prometheus();
    assert!(prom.contains(&format!(
        "poptrie_lookups_total{{mode=\"scalar\"}} {}",
        script.scalar
    )));
    assert!(prom.contains(&format!(
        "poptrie_rcu_publishes_total {}",
        script.rcu_publishes
    )));
    let json = t.render_json();
    assert!(json.contains(&format!(
        "\"poptrie_lookups_total{{mode=scalar}}\": {}",
        script.scalar
    )));

    // reset() really zeroes everything a fresh process would show.
    telemetry::reset();
    let z = telemetry::snapshot();
    assert_eq!(z.lookups_total(), 0);
    assert_eq!(z.updates_total(), 0);
    assert_eq!(z.depth.iter().sum::<u64>(), 0);
}
