//! Cross-crate validation: every lookup algorithm in the workspace must
//! agree with the binary radix tree (ground truth) on synthesized tables
//! of every kind — the workspace equivalent of the paper's whole-address-
//! space validation ("we implemented these algorithms ourselves, and
//! validated their correctness by comparing all lookup results of all
//! algorithms", §4).

use poptrie_suite::baselines::{Dir248, Dxr, DxrConfig, Lulea, Sail, TreeBitmap4, TreeBitmap64};
use poptrie_suite::tablegen::{expand_syn1, expand_syn2, Dataset, TableKind, TableSpec};
use poptrie_suite::traffic::Xorshift128;
use poptrie_suite::{Builder, LinearLpm, Lpm, Patricia, Poptrie, PoptrieBasic, Prefix};

/// Build one instance of every algorithm in the workspace for `dataset`.
fn build_algos(dataset: &Dataset) -> Vec<(String, Box<dyn Lpm<u32>>)> {
    let rib = dataset.to_rib();
    let mut algos: Vec<(String, Box<dyn Lpm<u32>>)> = Vec::new();
    let mut pat: Patricia<u32, u16> = Patricia::new();
    for &(p, nh) in &dataset.routes {
        pat.insert(p, nh);
    }
    algos.push(("Patricia".into(), Box::new(pat)));
    algos.push(("TreeBitmap4".into(), Box::new(TreeBitmap4::from_rib(&rib))));
    algos.push((
        "TreeBitmap64".into(),
        Box::new(TreeBitmap64::from_rib(&rib)),
    ));
    algos.push(("SAIL".into(), Box::new(Sail::from_rib(&rib).expect("sail"))));
    algos.push((
        "DIR-24-8".into(),
        Box::new(Dir248::from_rib(&rib).expect("dir248")),
    ));
    algos.push((
        "Lulea".into(),
        Box::new(Lulea::from_rib(&rib).expect("lulea")),
    ));
    for cfg in [DxrConfig::d16r(), DxrConfig::d18r()] {
        algos.push((
            format!("D{}R", cfg.direct_bits),
            Box::new(Dxr::from_rib(&rib, cfg).expect("dxr")),
        ));
    }
    for s in [0u8, 16, 18] {
        let agg = s != 16; // cover both aggregation settings
        algos.push((
            format!("Poptrie{s}"),
            Box::new(
                Builder::<u32, poptrie_suite::poptrie::Node24>::new()
                    .direct_bits(s)
                    .aggregate(agg)
                    .build(&rib),
            ),
        ));
    }
    algos.push((
        "PoptrieBasic18".into(),
        Box::new(
            Builder::<u32, poptrie_suite::poptrie::Node16>::new()
                .direct_bits(18)
                .aggregate(false)
                .build(&rib),
        ),
    ));
    algos
}

/// Build every algorithm and check agreement on random + adversarial keys.
fn validate(dataset: &Dataset, random_keys: usize) {
    let rib = dataset.to_rib();
    let algos = build_algos(dataset);

    let check = |key: u32| {
        let want = Lpm::lookup(&rib, key);
        for (name, fib) in &algos {
            assert_eq!(
                fib.lookup(key),
                want,
                "{name} at {key:#010x} on {}",
                dataset.name
            );
        }
    };
    let mut rng = Xorshift128::new(0xCAFE);
    for _ in 0..random_keys {
        check(rng.next_u32());
    }
    // Adversarial: prefix boundaries of every 50th route.
    for (p, _) in dataset.routes.iter().step_by(50) {
        let base = p.addr();
        let host = 32 - p.len() as u32;
        let last = if host == 0 {
            base
        } else {
            base | (u32::MAX >> (32 - host))
        };
        for key in [
            base,
            base.wrapping_sub(1),
            base.wrapping_add(1),
            last,
            last.wrapping_add(1),
        ] {
            check(key);
        }
    }
}

fn spec(name: &str, n: usize, nh: u16, kind: TableKind) -> Dataset {
    TableSpec {
        name: name.into(),
        prefixes: n,
        next_hops: nh,
        kind,
    }
    .generate()
}

#[test]
fn routeviews_shape_agrees() {
    validate(&spec("xval-rv", 30_000, 64, TableKind::RouteViews), 20_000);
}

#[test]
fn real_shape_agrees() {
    validate(&spec("xval-real", 30_000, 13, TableKind::Real), 20_000);
}

#[test]
fn syn_expansions_agree() {
    let base = spec("xval-real-syn", 15_000, 13, TableKind::Real);
    validate(&expand_syn1(&base), 10_000);
    validate(&expand_syn2(&base), 10_000);
}

#[test]
fn tiny_and_pathological_tables_agree() {
    // Empty table.
    validate(
        &Dataset {
            name: "xval-empty".into(),
            routes: vec![],
        },
        2_000,
    );
    // Default route only.
    validate(
        &Dataset {
            name: "xval-default".into(),
            routes: vec![(Prefix::new(0, 0), 1)],
        },
        2_000,
    );
    // Nested chain from /1 to /32 on one path, alternating next hops.
    let chain: Vec<(Prefix<u32>, u16)> = (1..=32u8)
        .map(|len| (Prefix::new(0xF0F0_F0F0, len), (len % 7 + 1) as u16))
        .collect();
    validate(
        &Dataset {
            name: "xval-chain".into(),
            routes: chain,
        },
        5_000,
    );
    // All /32 host routes around chunk boundaries of every algorithm.
    let hosts: Vec<(Prefix<u32>, u16)> = (0..64u32)
        .map(|i| {
            (
                Prefix::new(0x0A00_0000 + i * 0x0003_FFFF, 32),
                (i % 9 + 1) as u16,
            )
        })
        .collect();
    validate(
        &Dataset {
            name: "xval-hosts".into(),
            routes: hosts,
        },
        5_000,
    );
}

#[test]
fn batched_lookup_matches_scalar() {
    // The differential contract of Lpm::lookup_batch: for every algorithm
    // (interleaved+prefetch overrides and default scalar loops alike),
    // batching must be unobservable except in speed. 100_003 keys makes
    // the count a non-multiple of every exercised batch size, so each
    // partial tail chunk — and the overrides' internal 8-lane tail — is
    // hit too.
    let d = spec("xval-batch", 30_000, 32, TableKind::Real);
    let algos = build_algos(&d);
    let mut rng = Xorshift128::new(0xBA7C);
    let keys: Vec<u32> = (0..100_003).map(|_| rng.next_u32()).collect();
    for (name, fib) in &algos {
        let want: Vec<u16> = keys.iter().map(|&k| fib.lookup(k).unwrap_or(0)).collect();
        for batch in [1usize, 7, 8, 1000] {
            let mut got = vec![0u16; keys.len()];
            for (kc, oc) in keys.chunks(batch).zip(got.chunks_mut(batch)) {
                fib.lookup_batch(kc, oc);
            }
            assert_eq!(got, want, "{name}, batch size {batch}");
        }
        // One whole-array call, driving the implementation's own chunking.
        let mut got = vec![0u16; keys.len()];
        fib.lookup_batch(&keys, &mut got);
        assert_eq!(got, want, "{name}, single 100_003-key call");
    }
}

#[test]
fn linear_oracle_agrees_with_radix() {
    // The oracle itself is validated against the RIB here; the per-crate
    // proptests lean on it.
    let d = spec("xval-oracle", 2_000, 8, TableKind::Real);
    let rib = d.to_rib();
    let lin = LinearLpm::new(d.routes.clone());
    let mut rng = Xorshift128::new(5);
    for _ in 0..20_000 {
        let key = rng.next_u32();
        assert_eq!(Lpm::lookup(&rib, key), Lpm::lookup(&lin, key));
    }
}

#[test]
fn poptrie_variants_are_equivalent() {
    // Basic vs leafvec vs aggregated: identical lookup behaviour, very
    // different sizes (§3.3, Table 2).
    let d = spec("xval-variants", 25_000, 16, TableKind::Real);
    let rib = d.to_rib();
    let basic: PoptrieBasic<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
    let leafvec: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
    let full: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(true).build(&rib);
    assert!(leafvec.stats().leaves < basic.stats().leaves / 5);
    assert!(full.stats().memory_bytes <= leafvec.stats().memory_bytes);
    let mut rng = Xorshift128::new(11);
    for _ in 0..50_000 {
        let key = rng.next_u32();
        let want = basic.lookup(key);
        assert_eq!(leafvec.lookup(key), want);
        assert_eq!(full.lookup(key), want);
    }
}
