//! Cross-crate validation: every lookup algorithm in the workspace must
//! agree with the binary radix tree (ground truth) on synthesized tables
//! of every kind — the workspace equivalent of the paper's whole-address-
//! space validation ("we implemented these algorithms ourselves, and
//! validated their correctness by comparing all lookup results of all
//! algorithms", §4).

use poptrie_suite::baselines::{Dir248, Dxr, DxrConfig, Lulea, Sail, TreeBitmap4, TreeBitmap64};
use poptrie_suite::bitops::Bits;
use poptrie_suite::poptrie::{BatchBackend, PoptrieConfig};
use poptrie_suite::rng::prelude::*;
use poptrie_suite::tablegen::{
    churn_stream, expand_syn1, expand_syn2, ChurnConfig, ChurnEvent, Dataset, TableKind, TableSpec,
};
use poptrie_suite::traffic::Xorshift128;
use poptrie_suite::{Builder, Fib, LinearLpm, Lpm, Patricia, Poptrie, PoptrieBasic, Prefix};

/// Build one instance of every algorithm in the workspace for `dataset`.
fn build_algos(dataset: &Dataset) -> Vec<(String, Box<dyn Lpm<u32>>)> {
    let rib = dataset.to_rib();
    let mut algos: Vec<(String, Box<dyn Lpm<u32>>)> = Vec::new();
    let mut pat: Patricia<u32, u16> = Patricia::new();
    for &(p, nh) in &dataset.routes {
        pat.insert(p, nh);
    }
    algos.push(("Patricia".into(), Box::new(pat)));
    algos.push(("TreeBitmap4".into(), Box::new(TreeBitmap4::from_rib(&rib))));
    algos.push((
        "TreeBitmap64".into(),
        Box::new(TreeBitmap64::from_rib(&rib)),
    ));
    algos.push(("SAIL".into(), Box::new(Sail::from_rib(&rib).expect("sail"))));
    algos.push((
        "DIR-24-8".into(),
        Box::new(Dir248::from_rib(&rib).expect("dir248")),
    ));
    algos.push((
        "Lulea".into(),
        Box::new(Lulea::from_rib(&rib).expect("lulea")),
    ));
    for cfg in [DxrConfig::d16r(), DxrConfig::d18r()] {
        algos.push((
            format!("D{}R", cfg.direct_bits),
            Box::new(Dxr::from_rib(&rib, cfg).expect("dxr")),
        ));
    }
    for s in [0u8, 16, 18] {
        let agg = s != 16; // cover both aggregation settings
        algos.push((
            format!("Poptrie{s}"),
            Box::new(
                Builder::<u32, poptrie_suite::poptrie::Node24>::new()
                    .direct_bits(s)
                    .aggregate(agg)
                    .build(&rib),
            ),
        ));
    }
    algos.push((
        "PoptrieBasic18".into(),
        Box::new(
            Builder::<u32, poptrie_suite::poptrie::Node16>::new()
                .direct_bits(18)
                .aggregate(false)
                .build(&rib),
        ),
    ));
    algos
}

/// Build every algorithm and check agreement on random + adversarial keys.
fn validate(dataset: &Dataset, random_keys: usize) {
    let rib = dataset.to_rib();
    let algos = build_algos(dataset);

    let check = |key: u32| {
        let want = Lpm::lookup(&rib, key);
        for (name, fib) in &algos {
            assert_eq!(
                fib.lookup(key),
                want,
                "{name} at {key:#010x} on {}",
                dataset.name
            );
        }
    };
    let mut rng = Xorshift128::new(0xCAFE);
    for _ in 0..random_keys {
        check(rng.next_u32());
    }
    // Adversarial: prefix boundaries of every 50th route.
    for (p, _) in dataset.routes.iter().step_by(50) {
        let base = p.addr();
        let host = 32 - p.len() as u32;
        let last = if host == 0 {
            base
        } else {
            base | (u32::MAX >> (32 - host))
        };
        for key in [
            base,
            base.wrapping_sub(1),
            base.wrapping_add(1),
            last,
            last.wrapping_add(1),
        ] {
            check(key);
        }
    }
}

fn spec(name: &str, n: usize, nh: u16, kind: TableKind) -> Dataset {
    TableSpec {
        name: name.into(),
        prefixes: n,
        next_hops: nh,
        kind,
    }
    .generate()
}

#[test]
fn routeviews_shape_agrees() {
    validate(&spec("xval-rv", 30_000, 64, TableKind::RouteViews), 20_000);
}

#[test]
fn real_shape_agrees() {
    validate(&spec("xval-real", 30_000, 13, TableKind::Real), 20_000);
}

#[test]
fn syn_expansions_agree() {
    let base = spec("xval-real-syn", 15_000, 13, TableKind::Real);
    validate(&expand_syn1(&base), 10_000);
    validate(&expand_syn2(&base), 10_000);
}

#[test]
fn tiny_and_pathological_tables_agree() {
    // Empty table.
    validate(
        &Dataset {
            name: "xval-empty".into(),
            routes: vec![],
        },
        2_000,
    );
    // Default route only.
    validate(
        &Dataset {
            name: "xval-default".into(),
            routes: vec![(Prefix::new(0, 0), 1)],
        },
        2_000,
    );
    // Nested chain from /1 to /32 on one path, alternating next hops.
    let chain: Vec<(Prefix<u32>, u16)> = (1..=32u8)
        .map(|len| (Prefix::new(0xF0F0_F0F0, len), (len % 7 + 1) as u16))
        .collect();
    validate(
        &Dataset {
            name: "xval-chain".into(),
            routes: chain,
        },
        5_000,
    );
    // All /32 host routes around chunk boundaries of every algorithm.
    let hosts: Vec<(Prefix<u32>, u16)> = (0..64u32)
        .map(|i| {
            (
                Prefix::new(0x0A00_0000 + i * 0x0003_FFFF, 32),
                (i % 9 + 1) as u16,
            )
        })
        .collect();
    validate(
        &Dataset {
            name: "xval-hosts".into(),
            routes: hosts,
        },
        5_000,
    );
}

#[test]
fn batched_lookup_matches_scalar() {
    // The differential contract of Lpm::lookup_batch: for every algorithm
    // (interleaved+prefetch overrides and default scalar loops alike),
    // batching must be unobservable except in speed. 100_003 keys makes
    // the count a non-multiple of every exercised batch size, so each
    // partial tail chunk — and the overrides' internal 8-lane tail — is
    // hit too.
    let d = spec("xval-batch", 30_000, 32, TableKind::Real);
    let algos = build_algos(&d);
    let mut rng = Xorshift128::new(0xBA7C);
    let keys: Vec<u32> = (0..100_003).map(|_| rng.next_u32()).collect();
    for (name, fib) in &algos {
        let want: Vec<u16> = keys.iter().map(|&k| fib.lookup(k).unwrap_or(0)).collect();
        for batch in [1usize, 7, 8, 1000] {
            let mut got = vec![0u16; keys.len()];
            for (kc, oc) in keys.chunks(batch).zip(got.chunks_mut(batch)) {
                fib.lookup_batch(kc, oc);
            }
            assert_eq!(got, want, "{name}, batch size {batch}");
        }
        // One whole-array call, driving the implementation's own chunking.
        let mut got = vec![0u16; keys.len()];
        fib.lookup_batch(&keys, &mut got);
        assert_eq!(got, want, "{name}, single 100_003-key call");
    }
}

#[test]
fn linear_oracle_agrees_with_radix() {
    // The oracle itself is validated against the RIB here; the per-crate
    // proptests lean on it.
    let d = spec("xval-oracle", 2_000, 8, TableKind::Real);
    let rib = d.to_rib();
    let lin = LinearLpm::new(d.routes.clone());
    let mut rng = Xorshift128::new(5);
    for _ in 0..20_000 {
        let key = rng.next_u32();
        assert_eq!(Lpm::lookup(&rib, key), Lpm::lookup(&lin, key));
    }
}

/// Every dispatch tier the running CPU can execute. Under the CI matrix
/// (`POPTRIE_BACKEND=scalar` / `avx2`) the wider tiers are still listed
/// here if the silicon has them — the env knob pins what `detect()`
/// builds by default, while this fuzz force-installs each tier
/// explicitly, so the forced-scalar run and the full-ladder run check
/// the same agreement property from both directions.
fn backends() -> Vec<BatchBackend> {
    use BatchBackend::*;
    [Scalar, Avx2, Avx512]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// Wrapping successor/predecessor within the key width.
fn wrapping_step<K: Bits>(k: K, delta: i128) -> K {
    K::from_u128(k.to_u128().wrapping_add(delta as u128) & K::ONES.to_u128())
}

/// Differential fuzz of the dispatch ladder over churn-fuzzer tables.
///
/// The §3.5 incremental updater produces trie shapes a from-scratch
/// build never emits verbatim — buddy-reallocated node blocks, patched
/// direct slots, leafvec rewrites — and the SIMD walkers gather straight
/// out of those arrays. So beyond the from-scratch differential in
/// [`batched_lookup_matches_scalar`], every available tier (forced via
/// `set_batch_backend`, not left to detection) must agree with the
/// scalar one-key lookup on *churned* tables at many points mid-stream,
/// with the adversarial key mix of the churn fuzzer: both ends of every
/// recently-touched prefix, their one-off neighbours, and random keys.
fn churn_backend_differential<K: Bits>(cfg: ChurnConfig, check_every: usize) {
    let stream = churn_stream::<K>(&cfg);
    let pcfg = PoptrieConfig::new()
        .direct_bits(cfg.direct_bits)
        .aggregate(false)
        .build()
        .unwrap();
    let mut fib: Fib<K> = Fib::with_config(pcfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1FF_BACD);
    let tiers = backends();
    assert!(tiers.contains(&BatchBackend::Scalar));
    let ctx = format!(
        "seed {:#x} / s={} / {}-bit keys / tiers {:?}",
        cfg.seed,
        cfg.direct_bits,
        K::BITS,
        tiers
    );

    let mut recent: Vec<Prefix<K>> = Vec::new();
    for (i, ev) in stream.iter().enumerate() {
        match *ev {
            ChurnEvent::Announce(p, nh) => {
                fib.insert(p, nh).unwrap();
            }
            ChurnEvent::Withdraw(p) => {
                fib.remove(p).unwrap();
            }
        }
        recent.push(ev.prefix());
        let n = i + 1;
        if !n.is_multiple_of(check_every) && n != stream.len() {
            continue;
        }

        // Boundaries of every prefix touched since the last checkpoint,
        // plus random keys; the final count is forced off every lane
        // multiple so each kernel's partial-tail path runs too.
        let mut keys: Vec<K> = Vec::with_capacity(recent.len() * 4 + 2100);
        for p in recent.drain(..) {
            let (first, last) = (p.first_addr(), p.last_addr());
            keys.extend([
                first,
                last,
                wrapping_step(first, -1),
                wrapping_step(last, 1),
            ]);
        }
        loop {
            keys.push(K::from_u128(rng.gen::<u128>() & K::ONES.to_u128()));
            if keys.len() >= 2048 && keys.len() % 32 == 5 {
                break;
            }
        }
        let want: Vec<u16> = keys.iter().map(|&k| fib.lookup(k).unwrap_or(0)).collect();
        for &b in &tiers {
            assert_eq!(fib.set_batch_backend(b), b, "[{ctx}] tier refused");
            // One whole-array call (the kernel's own chunking) and one
            // chunked pass with an odd caller-side batch size.
            let mut got = vec![0xAAAAu16; keys.len()];
            fib.poptrie().lookup_batch(&keys, &mut got);
            assert!(
                got == want,
                "[{ctx}] backend {b} diverged from scalar lookup at event {i} \
                 (first bad key {:#x})",
                keys[got.iter().zip(&want).position(|(g, w)| g != w).unwrap()].to_u128()
            );
            let mut got = vec![0xAAAAu16; keys.len()];
            for (kc, oc) in keys.chunks(13).zip(got.chunks_mut(13)) {
                fib.poptrie().lookup_batch(kc, oc);
            }
            assert!(
                got == want,
                "[{ctx}] backend {b} diverged on 13-key chunks at event {i}"
            );
        }
    }
}

#[test]
fn churn_tables_agree_across_dispatch_tiers_u32() {
    churn_backend_differential::<u32>(
        ChurnConfig {
            seed: 0x0707_0001,
            events: 6_000,
            direct_bits: 16,
            pool: 192,
            max_nh: 200,
        },
        1_000,
    );
}

#[test]
fn churn_tables_agree_across_dispatch_tiers_u128() {
    churn_backend_differential::<u128>(
        ChurnConfig {
            seed: 0x0707_0002,
            events: 4_000,
            direct_bits: 16,
            pool: 160,
            max_nh: 200,
        },
        1_000,
    );
}

#[test]
fn churn_without_direct_table_agrees_across_tiers() {
    // `s = 0` keeps every lookup on the root-node path the direct-table
    // configs never take; the SIMD walkers special-case the first round.
    churn_backend_differential::<u32>(
        ChurnConfig {
            seed: 0x0707_0003,
            events: 2_000,
            direct_bits: 0,
            pool: 96,
            max_nh: 50,
        },
        500,
    );
}

#[test]
fn poptrie_variants_are_equivalent() {
    // Basic vs leafvec vs aggregated: identical lookup behaviour, very
    // different sizes (§3.3, Table 2).
    let d = spec("xval-variants", 25_000, 16, TableKind::Real);
    let rib = d.to_rib();
    let basic: PoptrieBasic<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
    let leafvec: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(false).build(&rib);
    let full: Poptrie<u32> = Builder::new().direct_bits(16).aggregate(true).build(&rib);
    assert!(leafvec.stats().leaves < basic.stats().leaves / 5);
    assert!(full.stats().memory_bytes <= leafvec.stats().memory_bytes);
    let mut rng = Xorshift128::new(11);
    for _ in 0..50_000 {
        let key = rng.next_u32();
        let want = basic.lookup(key);
        assert_eq!(leafvec.lookup(key), want);
        assert_eq!(full.lookup(key), want);
    }
}
