//! Edge cases of the batched lookup path: degenerate FIBs, miss
//! handling, tail batches, and batches against an RCU snapshot while a
//! writer churns the FIB. The differential test in `cross_validation.rs`
//! covers the bulk semantics; this file covers the boundaries.

use poptrie_suite::poptrie::sync::{RouteUpdate, SharedFib};
use poptrie_suite::poptrie::BATCH_LANES;
use poptrie_suite::traffic::Xorshift128;
use poptrie_suite::{Builder, Fib, Poptrie, Prefix, RadixTree};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const NO_ROUTE: u16 = 0;

fn build(routes: &[(Prefix<u32>, u16)], s: u8) -> Poptrie<u32> {
    let rib = RadixTree::from_routes(routes.iter().copied());
    Builder::new().direct_bits(s).build(&rib)
}

#[test]
fn empty_fib_batches_to_all_misses() {
    for s in [0u8, 16, 18] {
        let trie = build(&[], s);
        let mut rng = Xorshift128::new(1);
        // Cover the empty batch, sub-lane batches, one full lane block,
        // and a multi-block batch with a partial tail.
        for n in [0usize, 1, BATCH_LANES - 1, BATCH_LANES, 3 * BATCH_LANES + 5] {
            let keys: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
            let mut out = vec![0xAAAA; n];
            trie.lookup_batch(&keys, &mut out);
            assert!(
                out.iter().all(|&nh| nh == NO_ROUTE),
                "s={s}, n={n}: empty FIB must miss every key"
            );
        }
    }
}

#[test]
fn default_route_only_fib_batches_to_default() {
    for s in [0u8, 16, 18] {
        let trie = build(&[(Prefix::new(0, 0), 7)], s);
        let mut rng = Xorshift128::new(2);
        let keys: Vec<u32> = (0..1000).map(|_| rng.next_u32()).collect();
        let mut out = vec![NO_ROUTE; keys.len()];
        trie.lookup_batch(&keys, &mut out);
        assert!(
            out.iter().all(|&nh| nh == 7),
            "s={s}: default route must catch every key"
        );
    }
}

#[test]
fn misses_and_hits_interleave_correctly() {
    // One covered /8 among uncovered space: lanes resolving to a leaf
    // (hit) and lanes resolving to NO_ROUTE run in the same batch.
    let trie = build(&[(Prefix::new(0x0A00_0000, 8), 3)], 18);
    let keys: Vec<u32> = (0..100u32)
        .map(|i| {
            if i % 3 == 0 {
                0x0A00_0000 | (i * 0x0101)
            } else {
                0x4200_0000 | (i * 0x0101) // 66.0.0.0/8: no route
            }
        })
        .collect();
    let mut out = vec![0xAAAA; keys.len()];
    trie.lookup_batch(&keys, &mut out);
    for (i, (&k, &nh)) in keys.iter().zip(&out).enumerate() {
        let want = if k >> 24 == 0x0A { 3 } else { NO_ROUTE };
        assert_eq!(nh, want, "lane {i} key {k:#010x}");
    }
}

#[test]
#[should_panic(expected = "length mismatch")]
fn mismatched_output_length_panics() {
    let trie = build(&[(Prefix::new(0, 0), 1)], 16);
    let keys = [1u32, 2, 3];
    let mut out = [NO_ROUTE; 2];
    trie.lookup_batch(&keys, &mut out);
}

#[test]
fn incremental_fib_batches_like_scalar_across_updates() {
    // The Fib updater produces tries the builder never emits verbatim
    // (buddy-reallocated blocks, patched direct slots); the batched
    // walker must agree with the scalar one on those, too.
    let cfg = poptrie_suite::poptrie::PoptrieConfig::new()
        .direct_bits(16)
        .aggregate(false)
        .build()
        .unwrap();
    let mut fib: Fib<u32> = Fib::with_config(cfg);
    let mut rng = Xorshift128::new(3);
    for i in 0..300u32 {
        let len = 8 + (rng.next_u32() % 17) as u8;
        let p = Prefix::new(rng.next_u32() & (u32::MAX << (32 - len)), len);
        fib.insert(p, (i % 200 + 1) as u16).unwrap();
        if i % 5 == 0 {
            fib.remove(p).unwrap();
        }
        if i % 32 == 0 {
            let keys: Vec<u32> = (0..257).map(|_| rng.next_u32()).collect();
            let mut out = vec![NO_ROUTE; keys.len()];
            fib.poptrie().lookup_batch(&keys, &mut out);
            for (&k, &nh) in keys.iter().zip(&out) {
                assert_eq!(nh, fib.lookup(k).unwrap_or(NO_ROUTE), "key {k:#010x}");
            }
        }
    }
}

/// Every dispatch tier the running CPU can execute.
fn backends() -> Vec<poptrie_suite::poptrie::BatchBackend> {
    use poptrie_suite::poptrie::BatchBackend::*;
    [Scalar, Avx2, Avx512]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

#[test]
fn dense_host_routes_resolve_on_every_backend_v4() {
    // Key-width boundary regression (ISSUE 7): dense /32 routes drive
    // every lane down the maximal chain — with s = 18 the chunk offsets
    // are 18, 24, 30, and the final `extract(30, 6)` straddles the key
    // end (two real bits, four zero-pad bits). Keys differing only in
    // bits 30..32 must split into distinct leaves, and the pad bits must
    // never leak garbage into the slot value — on the scalar and SIMD
    // tiers alike.
    let base = 0x0A0A_0A00u32;
    let mut routes: Vec<(Prefix<u32>, u16)> = (0..256u32)
        .map(|i| (Prefix::new(base | i, 32), (i + 1) as u16))
        .collect();
    // Parents at every length around the chunk seams keep leaves at the
    // shallower depths live too.
    routes.push((Prefix::new(0x0A00_0000, 8), 1000));
    routes.push((Prefix::new(0x0A0A_0000, 16), 1001));
    routes.push((Prefix::new(0x0A0A_0A00, 24), 1002));
    routes.push((Prefix::new(0x0A0A_0A40, 26), 1003));
    for s in [0u8, 16, 18] {
        let rib = RadixTree::from_routes(routes.iter().copied());
        let mut trie: Poptrie<u32> = Builder::new().direct_bits(s).aggregate(false).build(&rib);
        let keys: Vec<u32> = (0..1024u32)
            .map(|i| base.wrapping_add(i).wrapping_sub(256))
            .collect();
        let want: Vec<u16> = keys
            .iter()
            .map(|&k| trie.lookup(k).unwrap_or(NO_ROUTE))
            .collect();
        for b in backends() {
            assert_eq!(trie.set_batch_backend(b), b);
            let mut out = vec![0xAAAA; keys.len()];
            trie.lookup_batch(&keys, &mut out);
            assert_eq!(out, want, "backend {b}, s={s}");
        }
    }
}

#[test]
fn dense_host_routes_resolve_on_every_backend_v6() {
    // The IPv6 twin: /128 routes walk ~19 levels (s = 16: offsets 16,
    // 22, …, 124), and the offset-124 chunk holds the last four real
    // bits plus two pad bits. A key-width bug at the boundary would
    // corrupt exactly the low-bit neighbors generated here.
    let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0100;
    let mut routes: Vec<(Prefix<u128>, u16)> = (0..128u128)
        .map(|i| (Prefix::new(base | i, 128), (i + 1) as u16))
        .collect();
    routes.push((Prefix::new(base & !0xFFFF_FFFF, 96), 2000));
    routes.push((Prefix::new(base, 120), 2001));
    routes.push((Prefix::new(base | 0x40, 122), 2002));
    for s in [0u8, 16] {
        let rib = RadixTree::from_routes(routes.iter().copied());
        let mut trie: Poptrie<u128> = Builder::new().direct_bits(s).aggregate(false).build(&rib);
        let keys: Vec<u128> = (0..512u128)
            .map(|i| base.wrapping_add(i).wrapping_sub(128))
            .collect();
        let want: Vec<u16> = keys
            .iter()
            .map(|&k| trie.lookup(k).unwrap_or(NO_ROUTE))
            .collect();
        for b in backends() {
            assert_eq!(trie.set_batch_backend(b), b);
            let mut out = vec![0xAAAA; keys.len()];
            trie.lookup_batch(&keys, &mut out);
            assert_eq!(out, want, "backend {b}, s={s}");
        }
    }
}

#[test]
fn shared_fib_batch_is_consistent_under_concurrent_updates() {
    // A batch runs against one RCU snapshot, so while a writer churns
    // some routes, (a) untouched routes must always resolve, and (b) a
    // churned route must resolve to exactly its inserted next hop or a
    // miss — never garbage and never a torn read.
    let cfg = poptrie_suite::poptrie::PoptrieConfig::new()
        .direct_bits(16)
        .aggregate(false)
        .build()
        .unwrap();
    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_config(cfg));
    fib.insert("10.0.0.0/8".parse().unwrap(), 1).unwrap();
    fib.insert("172.16.0.0/12".parse().unwrap(), 2).unwrap();
    let churn_prefix: Prefix<u32> = "192.168.0.0/16".parse().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let fib = Arc::clone(&fib);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut announced = false;
            while !stop.load(Ordering::Relaxed) {
                if announced {
                    fib.update_batch([RouteUpdate::Withdraw(churn_prefix)]);
                } else {
                    fib.update_batch([RouteUpdate::Announce(churn_prefix, 9)]);
                }
                announced = !announced;
            }
        })
    };

    let keys: Vec<u32> = vec![
        0x0A01_0203, // 10.1.2.3      -> always 1
        0xC0A8_0001, // 192.168.0.1   -> 9 or miss, per snapshot
        0xAC10_0101, // 172.16.1.1    -> always 2
        0xC0A8_FFFF, // 192.168.255.255
        0x0808_0808, // 8.8.8.8       -> always miss
    ];
    let mut opt_out = Vec::new();
    let mut raw_out = vec![NO_ROUTE; keys.len()];
    for _ in 0..2_000 {
        fib.lookup_batch(&keys, &mut opt_out);
        assert_eq!(opt_out[0], Some(1));
        assert_eq!(opt_out[2], Some(2));
        assert_eq!(opt_out[4], None);
        for churned in [opt_out[1], opt_out[3]] {
            assert!(churned == Some(9) || churned.is_none(), "got {churned:?}");
        }
        // The raw variant sees one snapshot per call, so within a call
        // the two churned keys must agree with each other.
        fib.lookup_batch_raw(&keys, &mut raw_out);
        assert_eq!(raw_out[0], 1);
        assert_eq!(raw_out[2], 2);
        assert_eq!(raw_out[4], NO_ROUTE);
        assert_eq!(
            raw_out[1], raw_out[3],
            "one batch must see one consistent snapshot"
        );
        assert!(raw_out[1] == 9 || raw_out[1] == NO_ROUTE);
    }

    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");

    // A snapshot taken before an update keeps answering from the old FIB.
    let pre = fib.snapshot();
    let had = pre.lookup(0xC0A8_0001);
    fib.insert(churn_prefix, 9).unwrap();
    assert_eq!(pre.lookup(0xC0A8_0001), had, "snapshot must be immutable");
    assert_eq!(fib.lookup(0xC0A8_0001), Some(9));
}
