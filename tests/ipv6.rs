//! IPv6 cross-validation (§4.10): Poptrie over `u128` keys against the
//! radix ground truth and the IPv6 DXR baseline.

use poptrie_suite::baselines::Dxr6;
use poptrie_suite::tablegen::ipv6_dataset;
use poptrie_suite::traffic::random_v6_in_2000;
use poptrie_suite::{Builder, Poptrie, Prefix, RadixTree};

#[test]
fn v6_algorithms_agree_on_tier1_table() {
    let table = ipv6_dataset("REAL-Tier1-A-v6");
    let rib = table.to_rib();
    let tries: Vec<(String, Poptrie<u128>)> = [0u8, 16, 18]
        .into_iter()
        .map(|s| {
            (
                format!("Poptrie{s}"),
                Builder::new().direct_bits(s).aggregate(s != 16).build(&rib),
            )
        })
        .collect();
    let dxrs: Vec<(String, Dxr6)> = [16u8, 18]
        .into_iter()
        .map(|s| (format!("D{s}R-v6"), Dxr6::from_rib(&rib, s).expect("fits")))
        .collect();
    for t in &tries {
        t.1.check_invariants().expect("invariants");
    }
    for addr in random_v6_in_2000(0x1234, 100_000) {
        let want = rib.lookup(addr).copied();
        for (name, t) in &tries {
            assert_eq!(t.lookup(addr), want, "{name} at {addr:#034x}");
        }
        for (name, d) in &dxrs {
            assert_eq!(d.lookup(addr), want, "{name} at {addr:#034x}");
        }
    }
}

#[test]
fn v6_boundary_addresses() {
    let table = ipv6_dataset("RV6-p0");
    let rib = table.to_rib();
    let fib: Poptrie<u128> = Builder::new().direct_bits(18).build(&rib);
    for (p, _) in table.routes.iter().step_by(20) {
        let base = p.addr();
        let host = 128 - p.len() as u32;
        let last = if host == 0 {
            base
        } else {
            base | (u128::MAX >> (128 - host))
        };
        for key in [base, base.wrapping_sub(1), last, last.wrapping_add(1)] {
            assert_eq!(fib.lookup(key), rib.lookup(key).copied(), "{key:#x}");
        }
    }
}

#[test]
fn v6_deep_prefixes_and_host_routes() {
    // Prefixes past /64, down to /128 hosts — 22 poptrie levels.
    let mut rib: RadixTree<u128, u16> = RadixTree::new();
    let host = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
    rib.insert(Prefix::new(host, 128), 1);
    rib.insert(Prefix::new(host, 127), 2);
    rib.insert(Prefix::new(host, 100), 3);
    rib.insert(Prefix::new(host, 65), 4);
    rib.insert(Prefix::new(host, 48), 5);
    for s in [0u8, 16, 18] {
        let fib: Poptrie<u128> = Builder::new().direct_bits(s).build(&rib);
        assert_eq!(fib.lookup(host), Some(1), "s={s}");
        assert_eq!(fib.lookup(host - 1), Some(2), "s={s}"); // ::0 under /127
        assert_eq!(fib.lookup(host + 0x100), Some(3), "s={s}");
        assert_eq!(fib.lookup(host + (1u128 << 40)), Some(4), "s={s}");
        assert_eq!(fib.lookup(host + (1u128 << 70)), Some(5), "s={s}");
        assert_eq!(fib.lookup(0x2001_0db9u128 << 96), None, "s={s}");
    }
}

#[test]
fn v6_incremental_updates() {
    let cfg = poptrie_suite::poptrie::PoptrieConfig::new()
        .direct_bits(18)
        .aggregate(false)
        .build()
        .unwrap();
    let mut fib: poptrie_suite::Fib<u128> = poptrie_suite::Fib::with_config(cfg);
    let p48: Prefix<u128> = "2001:db8:1::/48".parse().unwrap();
    let p64: Prefix<u128> = "2001:db8:1:2::/64".parse().unwrap();
    let inside64 = 0x2001_0db8_0001_0002_0000_0000_0000_0001u128;
    fib.insert(p48, 1).unwrap();
    assert_eq!(fib.lookup(inside64), Some(1));
    fib.insert(p64, 2).unwrap();
    assert_eq!(fib.lookup(inside64), Some(2));
    fib.remove(p64).unwrap();
    assert_eq!(fib.lookup(inside64), Some(1));
    fib.remove(p48).unwrap();
    assert_eq!(fib.lookup(inside64), None);
    assert_eq!(fib.poptrie().stats().inodes, 0);
}
