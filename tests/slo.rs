//! SLO-harness integration test: deadline-drop QoS with exact packet
//! accounting, under concurrent churn.
//!
//! The engine runs with [`QosPolicy::Deadline`]: admitted batches whose
//! queue wait exceeds the deadline are dropped at pop instead of served
//! late. The driver offers far more load than two stalled workers can
//! serve, so the engine must shed — and every shed packet must be
//! accounted for exactly once:
//!
//! ```text
//! offered == delivered + dropped-by-deadline + refused-at-ingress
//! ```
//!
//! at both batch and packet granularity, with the per-worker breakdown
//! summing to the totals. Delivered batches are additionally spot-checked
//! against a [`RadixTree`] oracle advanced through the publish log — a
//! batch that survived the deadline must still be *correct* for the FIB
//! version it was served against, even while churn rewrites the table.

use poptrie_suite::poptrie::sync::{RouteUpdate, SharedFib};
use poptrie_suite::poptrie::PoptrieConfig;
use poptrie_suite::prelude::{Engine, EngineConfig, QosPolicy};
use poptrie_suite::rib::NO_ROUTE;
use poptrie_suite::tablegen::{churn_stream, ChurnConfig, ChurnEvent};
use poptrie_suite::traffic::ZipfFlows;
use poptrie_suite::{Lpm, NextHop, RadixTree};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One recorded served batch: keys, produced next hops, and the snapshot
/// version the lookup ran against.
type ServedBatch = (Vec<u32>, Vec<NextHop>, u64);

/// One recorded publish: the version it produced and the coalesced
/// updates applied to reach it.
type Publish = (u64, Vec<RouteUpdate<u32>>);

const BATCH_KEYS: usize = 64;

#[test]
fn deadline_drops_account_every_packet_exactly_once_under_churn() {
    let events = churn_stream::<u32>(&ChurnConfig {
        seed: 0x510_0001,
        events: 1_200,
        direct_bits: 8,
        pool: 128,
        max_nh: 13,
    });
    let (seed_events, live_events) = events.split_at(300);

    let mut rib: RadixTree<u32, NextHop> = RadixTree::new();
    let mut oracle: RadixTree<u32, NextHop> = RadixTree::new();
    for ev in seed_events {
        match *ev {
            ChurnEvent::Announce(p, nh) => {
                rib.insert(p, nh);
                oracle.insert(p, nh);
            }
            ChurnEvent::Withdraw(p) => {
                rib.remove(p);
                oracle.remove(p);
            }
        }
    }
    let pcfg = PoptrieConfig::new()
        .direct_bits(8)
        .aggregate(false)
        .build()
        .unwrap();
    let fib = Arc::new(SharedFib::compile(rib, pcfg));
    let v0 = fib.version();

    let served: Arc<Mutex<Vec<ServedBatch>>> = Arc::new(Mutex::new(Vec::new()));
    let published: Arc<Mutex<Vec<Publish>>> = Arc::new(Mutex::new(Vec::new()));
    // Two workers, each stalled 20 ms per batch, with a 50 ms deadline:
    // the driver offers ~10x the service capacity, so the surplus must
    // be deadline-dropped (stale batches drain instantly at pop, so the
    // queues rarely refuse).
    let engine = Engine::start(
        Arc::clone(&fib),
        EngineConfig::new(2)
            .pin_workers(false)
            .queue_capacity(8)
            .coalesce_window(16)
            .batch_delay(Duration::from_millis(20))
            .qos(QosPolicy::Deadline(Duration::from_millis(50)))
            .on_batch({
                let served = Arc::clone(&served);
                Arc::new(move |_, keys: &[u32], out: &[NextHop], version| {
                    served
                        .lock()
                        .unwrap()
                        .push((keys.to_vec(), out.to_vec(), version));
                })
            })
            .on_publish({
                let published = Arc::clone(&published);
                Arc::new(move |outcome, updates: &[RouteUpdate<u32>]| {
                    published
                        .lock()
                        .unwrap()
                        .push((outcome.version, updates.to_vec()));
                })
            }),
    );

    // Drive: a Zipf flow mix (the SLO harness's skewed pattern), four
    // batches per round with churn interleaved, NO retry on refusal —
    // under a deadline policy a refused batch is a counted loss, not
    // something to block the feeder on.
    let mut zipf = ZipfFlows::random(512, 1.0, 0xF10_0001);
    let ingress = engine.ingress();
    let control = engine.control();
    let mut offered_batches = 0u64;
    let mut offered_packets = 0u64;
    let mut refused_batches = 0u64;
    let mut refused_packets = 0u64;
    let mut sent_events = 0u64;
    let mut churn_iter = live_events.iter().cycle();
    for _round in 0..80 {
        for _ in 0..2 {
            let update = match *churn_iter.next().unwrap() {
                ChurnEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
                ChurnEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
            };
            assert!(control.send(update).is_ok(), "control channel overflowed");
            sent_events += 1;
        }
        for _ in 0..4 {
            let mut keys = vec![0u32; BATCH_KEYS];
            zipf.fill(&mut keys);
            let batch: Arc<[u32]> = keys.into();
            offered_batches += 1;
            offered_packets += BATCH_KEYS as u64;
            if ingress.try_submit(batch).is_err() {
                refused_batches += 1;
                refused_packets += BATCH_KEYS as u64;
            }
        }
        std::thread::sleep(Duration::from_millis(4));
    }

    let report = engine.shutdown(Duration::from_secs(30));

    // --- shutdown contract.
    assert!(report.drained_clean, "shutdown left queued work behind");
    assert_eq!(report.leaked_threads, 0, "threads failed to join");

    // --- the test is real: both regimes actually happened.
    assert!(report.batches > 0, "no batch survived the deadline");
    assert!(
        report.deadline_dropped_batches > 0,
        "overload produced no deadline drops"
    );

    // --- exact accounting, batch granularity.
    assert_eq!(report.dropped_batches, refused_batches, "refusals agree");
    assert_eq!(
        offered_batches,
        report.batches + report.deadline_dropped_batches + report.dropped_batches,
        "offered == delivered + deadline-dropped + refused (batches)"
    );

    // --- exact accounting, packet granularity.
    assert_eq!(report.dropped_packets, refused_packets);
    assert_eq!(
        offered_packets,
        report.packets + report.deadline_dropped_packets + report.dropped_packets,
        "offered == delivered + deadline-dropped + refused (packets)"
    );

    // --- per-worker breakdown sums to the totals.
    assert_eq!(
        report.workers.iter().map(|w| w.batches).sum::<u64>(),
        report.batches
    );
    assert_eq!(
        report
            .workers
            .iter()
            .map(|w| w.deadline_dropped_batches)
            .sum::<u64>(),
        report.deadline_dropped_batches
    );
    assert_eq!(
        report
            .workers
            .iter()
            .map(|w| w.deadline_dropped_packets)
            .sum::<u64>(),
        report.deadline_dropped_packets
    );

    // --- every popped batch left a queue-wait sample; every served
    // batch left a service sample.
    assert_eq!(
        report.queue_wait.samples,
        report.batches + report.deadline_dropped_batches
    );
    assert_eq!(report.service.samples, report.batches);
    assert!(report.queue_wait.p50_ns <= report.queue_wait.p99_ns);
    assert!(report.queue_wait.p99_ns <= report.queue_wait.p999_ns);

    // --- control plane consumed everything.
    assert_eq!(report.update_events, sent_events);
    assert_eq!(report.control_dropped, 0);

    // --- RIB-oracle spot check: delivered batches are exact for the
    // version they were served against, churn notwithstanding.
    let mut served = Arc::try_unwrap(served).unwrap().into_inner().unwrap();
    let published = Arc::try_unwrap(published).unwrap().into_inner().unwrap();
    assert_eq!(served.len() as u64, report.batches, "hook fired per batch");
    served.sort_by_key(|&(_, _, version)| version);
    let mut publishes = published.iter().peekable();
    for (keys, out, version) in &served {
        assert!(*version >= v0, "batch served a pre-engine version");
        while publishes.peek().is_some_and(|(v, _)| v <= version) {
            let (_, updates) = publishes.next().unwrap();
            for u in updates {
                match *u {
                    RouteUpdate::Announce(p, nh) => {
                        oracle.insert(p, nh);
                    }
                    RouteUpdate::Withdraw(p) => {
                        oracle.remove(p);
                    }
                }
            }
        }
        for (k, got) in keys.iter().zip(out) {
            let want = Lpm::lookup(&oracle, *k).unwrap_or(NO_ROUTE);
            assert_eq!(
                *got, want,
                "key {k:#010x} at version {version}: engine said {got}, oracle says {want}"
            );
        }
    }
}
