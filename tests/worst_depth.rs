//! Regression test: the SLO harness's adversarial worst-depth stream
//! really does drive lookups to the **maximum** trie depth, observed
//! through the core depth-histogram telemetry (`--features telemetry`).
//!
//! [`WorstDepth`] synthesizes its pool from the installed table's
//! longest-match chains (binary-radix depth). This test checks the
//! property that makes the pattern adversarial for *Poptrie*: with a
//! table whose deepest radix chains end in the longest prefixes, the
//! stream reaches the same maximum multibit descent depth as a sweep of
//! every installed route — the worst case the SLO harness is meant to
//! exercise — and that on this table the maximum equals the analytic
//! `ceil((32 - s) / 6)` bound.
//!
//! Layout note: this file is its own integration-test binary with a
//! single `#[test]`. The core telemetry counters are process-wide
//! statics (see `tests/telemetry.rs`); keeping exactly one test in the
//! binary gives it exclusive ownership of the counters, so the
//! reset/observe sequences below cannot race with a sibling test.

#![cfg(feature = "telemetry")]

use poptrie_suite::poptrie::telemetry;
use poptrie_suite::poptrie::{Fib, PoptrieConfig};
use poptrie_suite::traffic::WorstDepth;
use poptrie_suite::{NextHop, Prefix};

const DIRECT_BITS: u8 = 8;
const STREAM: usize = 2_048;

/// `addr/len` as a [`Prefix`], masking host bits.
fn pfx(addr: u32, len: u8) -> Prefix<u32> {
    let mask = if len == 0 { 0 } else { !0u32 << (32 - len) };
    Prefix::new(addr & mask, len)
}

/// Highest depth bucket with any mass, from a telemetry snapshot.
fn max_depth(depth: &[u64]) -> usize {
    depth
        .iter()
        .enumerate()
        .rev()
        .find(|&(_, &n)| n > 0)
        .map(|(d, _)| d)
        .unwrap_or(0)
}

#[test]
fn worst_depth_stream_reaches_maximum_trie_depth() {
    // A table whose deepest radix chain is also its longest prefix: a
    // nested chain along 10.255.255.255 down to a /32, plus shallow
    // decoys that resolve in the direct table. With s = 8 the /32 chain
    // forces ceil((32 - 8) / 6) = 4 levels of multibit descent.
    let chain_addr = 0x0AFF_FFFFu32; // 10.255.255.255
    let mut routes: Vec<(Prefix<u32>, NextHop)> = Vec::new();
    for (i, len) in [8u8, 12, 16, 20, 24, 28, 32].into_iter().enumerate() {
        routes.push((pfx(chain_addr, len), (i + 1) as NextHop));
    }
    for (i, decoy) in [0xC000_0000u32, 0xC100_0000, 0x0800_0000]
        .into_iter()
        .enumerate()
    {
        routes.push((pfx(decoy, 8), (100 + i) as NextHop));
    }

    let cfg = PoptrieConfig::new()
        .direct_bits(DIRECT_BITS)
        .aggregate(false)
        .build()
        .unwrap();
    let mut fib: Fib<u32> = Fib::with_config(cfg);
    for &(p, nh) in &routes {
        fib.insert(p, nh).unwrap();
    }

    // Baseline: sweep every installed route's network address and record
    // the deepest descent any of them produces. This is the table's true
    // maximum — no traffic pattern can go deeper.
    telemetry::reset();
    for &(p, _) in &routes {
        fib.lookup(p.addr());
    }
    let sweep = telemetry::snapshot();
    let sweep_mass: u64 = sweep.depth.iter().sum();
    assert_eq!(sweep_mass, routes.len() as u64, "one sample per probe");
    let full_max = max_depth(&sweep.depth);
    assert_eq!(
        full_max,
        (32 - DIRECT_BITS as usize).div_ceil(6),
        "the /32 chain descends ceil((32 - s) / 6) levels"
    );

    // Adversarial stream: synthesized from the same route set, with a
    // pool cut far smaller than the table. Every stream address must be
    // drawn from the deepest chains, and the stream as a whole must hit
    // the table's maximum depth.
    let mut adversary = WorstDepth::synthesize(&routes, 4, 0xD0_0001);
    assert!(
        adversary.max_chain_depth() > 0,
        "chain table produced a depth-0 pool"
    );
    let mut stream = vec![0u32; STREAM];
    adversary.fill(&mut stream);

    telemetry::reset();
    for &addr in &stream {
        fib.lookup(addr);
    }
    let adv = telemetry::snapshot();
    let adv_mass: u64 = adv.depth.iter().sum();
    assert_eq!(adv_mass, STREAM as u64, "one depth sample per lookup");

    let adv_max = max_depth(&adv.depth);
    assert_eq!(
        adv_max, full_max,
        "adversarial stream fell short of the table's maximum depth \
         (reached {adv_max}, table max {full_max})"
    );

    // The pattern is concentrated, not a lucky outlier: with the pool
    // cut to the deepest chains, at least a uniform pool-share of the
    // stream (minus generous slack) lands at maximum depth.
    let pool = adversary.pool().len() as u64;
    assert!(
        adv.depth[adv_max] >= (STREAM as u64) / (4 * pool),
        "only {} of {STREAM} lookups reached depth {adv_max} (pool {pool})",
        adv.depth[adv_max]
    );

    // And nothing in the stream resolved in the direct table: depth 0
    // would mean the synthesizer picked an address outside every chain.
    assert_eq!(adv.depth[0], 0, "adversarial stream hit the direct table");
}
