//! Adversarial-input robustness: the two byte-level parsers (MRT dumps
//! and serialized FIBs) must never panic, whatever bytes they are fed —
//! they return structured errors instead. Routers parse these formats
//! from the network and from disk, so panicking on malformed input would
//! be a denial-of-service bug.

#![cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)

use poptrie_suite::poptrie::{Poptrie, PoptrieBasic};
use poptrie_suite::tablegen::mrt::parse_table_dump_v2;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mrt_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_table_dump_v2(&bytes);
    }

    #[test]
    fn fib_deserializer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Poptrie::<u32>::from_bytes(&bytes);
        let _ = Poptrie::<u128>::from_bytes(&bytes);
        let _ = PoptrieBasic::<u32>::from_bytes(&bytes);
    }

    #[test]
    fn fib_deserializer_rejects_bitflips(
        flip_byte in 18usize..400,
        flip_bit in 0u8..8,
    ) {
        // A valid blob with any single payload bit flipped must be
        // rejected (checksum) or still structurally valid — never panic,
        // never silently accept corrupt structure.
        let mut rib = poptrie_suite::RadixTree::new();
        rib.insert("10.0.0.0/8".parse().unwrap(), 1u16);
        rib.insert("10.1.2.0/24".parse().unwrap(), 2);
        let fib: Poptrie<u32> = Poptrie::builder().direct_bits(16).build(&rib);
        let mut bytes = fib.to_bytes();
        if flip_byte < bytes.len() {
            bytes[flip_byte] ^= 1 << flip_bit;
            // Offsets >= 18 are payload: the checksum must catch the flip.
            prop_assert!(Poptrie::<u32>::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn mrt_truncations_never_panic(cut in 0usize..200) {
        // Take a structurally valid stream and truncate it at every
        // possible byte: each cut must yield Ok (clean boundary) or a
        // structured error.
        let mut bytes = Vec::new();
        // PEER_INDEX_TABLE
        let body = {
            let mut b = Vec::new();
            b.extend_from_slice(&1u32.to_be_bytes());
            b.extend_from_slice(&0u16.to_be_bytes());
            b.extend_from_slice(&1u16.to_be_bytes());
            b.push(0x00);
            b.extend_from_slice(&7u32.to_be_bytes());
            b.extend_from_slice(&[192, 0, 2, 1]);
            b.extend_from_slice(&64500u16.to_be_bytes());
            b
        };
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&13u16.to_be_bytes());
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&body);
        // RIB_IPV4_UNICAST
        let body = {
            let mut b = Vec::new();
            b.extend_from_slice(&0u32.to_be_bytes());
            b.push(24);
            b.extend_from_slice(&[10, 1, 2]);
            b.extend_from_slice(&1u16.to_be_bytes());
            b.extend_from_slice(&0u16.to_be_bytes());
            b.extend_from_slice(&0u32.to_be_bytes());
            b.extend_from_slice(&7u16.to_be_bytes());
            b.extend_from_slice(&[0x40, 3, 4, 192, 0, 2, 9]);
            b
        };
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&13u16.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&body);

        let cut = cut.min(bytes.len());
        let _ = parse_table_dump_v2(&bytes[..cut]);
    }
}

#[test]
fn parse_error_offsets_point_into_the_input() {
    // Errors must carry usable positions for operators debugging dumps.
    let bytes = [0u8; 7]; // shorter than one MRT header
    let err = parse_table_dump_v2(&bytes).unwrap_err();
    assert!(err.offset <= bytes.len());
    assert!(!err.message.is_empty());
}

// ---------------------------------------------------------------- BGP

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bgp_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..4200)) {
        // The BGP codec parses bytes straight off a TCP stream from an
        // untrusted peer: arbitrary input must yield a message or a
        // structured error, never a panic.
        let _ = poptrie_suite::bgp::wire::parse_message(&bytes);
    }

    #[test]
    fn bgp4mp_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = poptrie_suite::tablegen::mrt::parse_bgp4mp(&bytes);
    }

    #[test]
    fn bgp_parser_survives_bitflips(
        which in 0usize..4,
        flip_byte in 0usize..80,
        flip_bit in 0u8..8,
    ) {
        // Start from each structurally valid message type and flip one
        // bit anywhere: the parser must return Ok or a structured
        // error — a panic is a remote denial-of-service.
        use poptrie_suite::bgp::wire::{Message, NotificationMsg, OpenMsg, UpdateMsg};
        let msg = match which {
            0 => Message::Open(OpenMsg {
                version: 4,
                asn: 65_001,
                hold_time: 90,
                bgp_id: 0xC000_0201,
                params: vec![1, 4, 0, 1, 0, 1],
            }),
            1 => Message::Update(UpdateMsg {
                withdrawn_v4: vec!["203.0.113.0/24".parse().unwrap()],
                announced_v4: vec!["10.0.0.0/8".parse().unwrap(), "10.1.2.0/24".parse().unwrap()],
                next_hop_v4: Some("192.0.2.9".parse().unwrap()),
                announced_v6: vec!["2001:db8::/32".parse().unwrap()],
                next_hop_v6: Some("2001:db8::1".parse().unwrap()),
                withdrawn_v6: vec!["2001:db8:ff::/48".parse().unwrap()],
            }),
            2 => Message::Keepalive,
            _ => Message::Notification(NotificationMsg {
                code: 6,
                subcode: 2,
                data: vec![0xDE, 0xAD],
            }),
        };
        let mut bytes = msg.encode();
        if flip_byte < bytes.len() {
            bytes[flip_byte] ^= 1 << flip_bit;
        }
        let _ = poptrie_suite::bgp::wire::parse_message(&bytes);
    }

    #[test]
    fn bgp_session_never_panics_on_garbage(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..32),
    ) {
        // The full stack — frame reassembly plus the session FSM — fed
        // arbitrary stream fragments while Established. Parse errors
        // must tear the session down cleanly, never panic.
        use poptrie_suite::bgp::wire::{Message, OpenMsg};
        use poptrie_suite::bgp::{Session, SessionConfig};
        let mut s = Session::new(SessionConfig::default());
        s.start(0);
        s.connected(0);
        s.recv(0, &Message::Open(OpenMsg {
            version: 4,
            asn: 65_001,
            hold_time: 90,
            bgp_id: 1,
            params: Vec::new(),
        }).encode());
        s.recv(0, &Message::Keepalive.encode());
        let mut now = 0u64;
        for chunk in &chunks {
            now += 1_000_000;
            s.recv(now, chunk);
            s.tick(now);
            s.drain_events();
            s.drain_actions();
        }
    }
}
