//! Adversarial-input robustness: the two byte-level parsers (MRT dumps
//! and serialized FIBs) must never panic, whatever bytes they are fed —
//! they return structured errors instead. Routers parse these formats
//! from the network and from disk, so panicking on malformed input would
//! be a denial-of-service bug.

#![cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)

use poptrie_suite::poptrie::{Poptrie, PoptrieBasic};
use poptrie_suite::tablegen::mrt::parse_table_dump_v2;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mrt_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_table_dump_v2(&bytes);
    }

    #[test]
    fn fib_deserializer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Poptrie::<u32>::from_bytes(&bytes);
        let _ = Poptrie::<u128>::from_bytes(&bytes);
        let _ = PoptrieBasic::<u32>::from_bytes(&bytes);
    }

    #[test]
    fn fib_deserializer_rejects_bitflips(
        flip_byte in 18usize..400,
        flip_bit in 0u8..8,
    ) {
        // A valid blob with any single payload bit flipped must be
        // rejected (checksum) or still structurally valid — never panic,
        // never silently accept corrupt structure.
        let mut rib = poptrie_suite::RadixTree::new();
        rib.insert("10.0.0.0/8".parse().unwrap(), 1u16);
        rib.insert("10.1.2.0/24".parse().unwrap(), 2);
        let fib: Poptrie<u32> = Poptrie::builder().direct_bits(16).build(&rib);
        let mut bytes = fib.to_bytes();
        if flip_byte < bytes.len() {
            bytes[flip_byte] ^= 1 << flip_bit;
            // Offsets >= 18 are payload: the checksum must catch the flip.
            prop_assert!(Poptrie::<u32>::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn mrt_truncations_never_panic(cut in 0usize..200) {
        // Take a structurally valid stream and truncate it at every
        // possible byte: each cut must yield Ok (clean boundary) or a
        // structured error.
        let mut bytes = Vec::new();
        // PEER_INDEX_TABLE
        let body = {
            let mut b = Vec::new();
            b.extend_from_slice(&1u32.to_be_bytes());
            b.extend_from_slice(&0u16.to_be_bytes());
            b.extend_from_slice(&1u16.to_be_bytes());
            b.push(0x00);
            b.extend_from_slice(&7u32.to_be_bytes());
            b.extend_from_slice(&[192, 0, 2, 1]);
            b.extend_from_slice(&64500u16.to_be_bytes());
            b
        };
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&13u16.to_be_bytes());
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&body);
        // RIB_IPV4_UNICAST
        let body = {
            let mut b = Vec::new();
            b.extend_from_slice(&0u32.to_be_bytes());
            b.push(24);
            b.extend_from_slice(&[10, 1, 2]);
            b.extend_from_slice(&1u16.to_be_bytes());
            b.extend_from_slice(&0u16.to_be_bytes());
            b.extend_from_slice(&0u32.to_be_bytes());
            b.extend_from_slice(&7u16.to_be_bytes());
            b.extend_from_slice(&[0x40, 3, 4, 192, 0, 2, 9]);
            b
        };
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&13u16.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&body);

        let cut = cut.min(bytes.len());
        let _ = parse_table_dump_v2(&bytes[..cut]);
    }
}

#[test]
fn parse_error_offsets_point_into_the_input() {
    // Errors must carry usable positions for operators debugging dumps.
    let bytes = [0u8; 7]; // shorter than one MRT header
    let err = parse_table_dump_v2(&bytes).unwrap_err();
    assert!(err.offset <= bytes.len());
    assert!(!err.message.is_empty());
}
