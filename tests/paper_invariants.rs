//! Regression tests for the paper's structural claims: the quantitative
//! statements of §3–§4 that must hold on our synthesized tables for the
//! evaluation to be meaningful.

use poptrie_suite::baselines::{Dxr, DxrConfig, Sail};
use poptrie_suite::tablegen::{self, expand_syn1, expand_syn2, TableKind, TableSpec};
use poptrie_suite::traffic::{RealTrace, TraceConfig};
use poptrie_suite::{Builder, Poptrie, PoptrieBasic};

fn real_table(n: usize) -> tablegen::Dataset {
    TableSpec {
        name: format!("inv-real-{n}"),
        prefixes: n,
        next_hops: 13,
        kind: TableKind::Real,
    }
    .generate()
}

#[test]
fn leafvec_reduces_leaves_by_90_percent() {
    // §4.3: "reduces more than 90% of leaves".
    let rib = real_table(60_000).to_rib();
    for s in [0u8, 16, 18] {
        let basic: PoptrieBasic<u32> = Builder::new().direct_bits(s).aggregate(false).build(&rib);
        let leafvec: Poptrie<u32> = Builder::new().direct_bits(s).aggregate(false).build(&rib);
        let ratio = leafvec.stats().leaves as f64 / basic.stats().leaves as f64;
        assert!(ratio < 0.10, "s={s}: leaf ratio {ratio:.3}");
    }
}

#[test]
fn direct_pointing_memory_tradeoff() {
    // Table 2: s = 18 costs ~1 MiB of direct table over s = 0 but removes
    // most tree traversal; s = 16 sits between.
    let rib = real_table(60_000).to_rib();
    let t0: Poptrie<u32> = Builder::new().direct_bits(0).build(&rib);
    let t16: Poptrie<u32> = Builder::new().direct_bits(16).build(&rib);
    let t18: Poptrie<u32> = Builder::new().direct_bits(18).build(&rib);
    assert_eq!(t0.stats().direct_slots, 0);
    assert_eq!(t16.stats().direct_slots, 1 << 16);
    assert_eq!(t18.stats().direct_slots, 1 << 18);
    // Direct pointing resolves the shallow part without internal nodes.
    assert!(t18.stats().inodes < t0.stats().inodes);
    // §3.4: memory footprint grows by at most 4 * 2^s bytes.
    assert!(t18.stats().memory_bytes <= t0.stats().memory_bytes + 4 * (1 << 18));
}

#[test]
fn node_sizes_are_paper_exact() {
    // §3: 16-byte basic nodes, 24-byte leafvec nodes.
    assert_eq!(std::mem::size_of::<poptrie_suite::poptrie::Node16>(), 16);
    assert_eq!(std::mem::size_of::<poptrie_suite::poptrie::Node24>(), 24);
}

#[test]
fn binary_radix_depth_exceeds_prefix_length() {
    // Figure 7's key observation: deciding a *short* match often needs a
    // *deep* search. On a REAL-shaped table, a nontrivial share of
    // addresses must exhibit depth > matched length.
    let rib = real_table(40_000).to_rib();
    let mut rng = poptrie_suite::traffic::Xorshift128::new(77);
    let mut matched = 0u64;
    let mut deeper = 0u64;
    for _ in 0..200_000 {
        let key = rng.next_u32();
        let (v, depth, plen) = rib.lookup_with_depth(key);
        if v.is_some() {
            matched += 1;
            if depth > plen.unwrap_or(0) as u32 {
                deeper += 1;
            }
        }
    }
    assert!(matched > 10_000, "sample too small: {matched}");
    let frac = deeper as f64 / matched as f64;
    assert!(frac > 0.05, "depth>plen fraction {frac:.3}");
}

#[test]
fn real_trace_depth_statistics_match_section_4_7() {
    // §4.7: "32.5% of the packets in real-trace … have the binary radix
    // depth more than 18, … 21.8% … more than 24".
    let dataset = real_table(40_000);
    let rib = dataset.to_rib();
    let trace = RealTrace::synthesize(
        &dataset,
        TraceConfig {
            destinations: 50_000,
            ..TraceConfig::default()
        },
    );
    let (mut d18, mut d24) = (0u64, 0u64);
    for &dst in &trace.destinations {
        let depth = rib.lookup_with_depth(dst).1;
        if depth > 18 {
            d18 += 1;
        }
        if depth > 24 {
            d24 += 1;
        }
    }
    let n = trace.destinations.len() as f64;
    let f18 = d18 as f64 / n;
    let f24 = d24 as f64 / n;
    assert!((0.25..=0.45).contains(&f18), "depth>18 fraction {f18:.3}");
    assert!((0.12..=0.30).contains(&f24), "depth>24 fraction {f24:.3}");
}

#[test]
fn section5_structural_headroom() {
    // §5: "we estimate the limitation on the number of internal nodes,
    // leaf nodes, and next hops, and project that Poptrie can support a
    // hundred million ... routes ... in contrast to DXR and SAIL which
    // already reached their limitations in our synthetic RIB
    // evaluations." The indices are u32 and the leaf is u16: verify the
    // arithmetic the paper's projection rests on.
    //
    // - node/leaf indices (base0/base1, direct entries): u32, and direct
    //   leaf entries sacrifice bit 31 -> >= 2^31 addressable nodes.
    // - next hops: u16 with 0 reserved -> 65535 FIB entries.
    // - SAIL / Lulea / DIR-24-8 chunk ids: 15 bits -> 32767.
    // - DXR range index: 19 (stock) or 20 (modified) bits.
    assert_eq!(std::mem::size_of::<poptrie_suite::NextHop>() * 8, 16);
    assert_eq!(poptrie_suite::baselines::SAIL_MAX_CHUNKS, 1 << 15);
    // A Poptrie on a table already fatal to SAIL builds with inode counts
    // around 10^5 — more than four orders of magnitude of headroom below
    // the u32 index space, consistent with the paper's 10^8 projection.
    let base = tablegen::TableSpec {
        name: "inv-headroom".into(),
        prefixes: 60_000,
        next_hops: 13,
        kind: TableKind::Real,
    }
    .generate();
    let rib = base.to_rib();
    let t: Poptrie<u32> = Builder::new().direct_bits(18).build(&rib);
    let st = t.stats();
    assert!(st.inodes < (1usize << 31) / 10_000);
}

/// Full-scale Table 5 structural behaviour. Slow (generates the full
/// 531K-route REAL-Tier1-A and its SYN expansions and compiles SAIL/DXR
/// on them); run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full-scale dataset synthesis; minutes in debug builds"]
fn table5_structural_limits_full_scale() {
    let base = tablegen::dataset("REAL-Tier1-A");
    let syn1 = expand_syn1(&base);
    let syn2 = expand_syn2(&base);

    // Base: everything compiles (Table 3).
    let rib = base.to_rib();
    assert!(Sail::from_rib(&rib).is_ok());
    assert!(Dxr::from_rib(&rib, DxrConfig::d18r()).is_ok());

    // SYN1: SAIL still compiles; stock DXR overflows; modified works.
    let rib1 = syn1.to_rib();
    assert!(Sail::from_rib(&rib1).is_ok(), "SAIL must compile SYN1");
    assert!(Dxr::from_rib(&rib1, DxrConfig::d18r()).is_err());
    assert!(Dxr::from_rib(
        &rib1,
        DxrConfig {
            direct_bits: 18,
            extended_index: true
        }
    )
    .is_ok());

    // SYN2: SAIL hits its 15-bit chunk-id limit (the paper's N/A);
    // modified DXR still compiles.
    let rib2 = syn2.to_rib();
    assert!(Sail::from_rib(&rib2).is_err(), "SAIL must fail SYN2");
    assert!(Dxr::from_rib(
        &rib2,
        DxrConfig {
            direct_bits: 18,
            extended_index: true
        }
    )
    .is_ok());

    // Poptrie compiles everything, with room to spare (§5).
    let _: Poptrie<u32> = Builder::new().direct_bits(18).build(&rib2);
}
