//! Cross-crate incremental-update consistency: replaying synthesized BGP
//! update streams through the §3.5 patch path must leave the FIB
//! equivalent to a from-scratch compilation, with tight allocator
//! accounting, and lock-free readers must see consistent snapshots
//! throughout.

use poptrie_suite::poptrie::sync::{RouteUpdate, SharedFib};
use poptrie_suite::tablegen::{synthesize_update_stream, TableKind, TableSpec, UpdateEvent};
use poptrie_suite::traffic::Xorshift128;
use poptrie_suite::{Builder, Fib, Lpm, Poptrie};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn base(n: usize) -> poptrie_suite::tablegen::Dataset {
    TableSpec {
        name: format!("inc-{n}"),
        prefixes: n,
        next_hops: 16,
        kind: TableKind::RouteViews,
    }
    .generate()
}

#[test]
fn replay_matches_rebuild() {
    let dataset = base(20_000);
    let stream = synthesize_update_stream(&dataset, 1_500, 500);
    let mut fib = Fib::from_rib(dataset.to_rib(), 18, false);
    for ev in &stream {
        match *ev {
            UpdateEvent::Announce(p, nh) => {
                fib.insert(p, nh);
            }
            UpdateEvent::Withdraw(p) => {
                fib.remove(p);
            }
        }
    }
    fib.poptrie().check_invariants().expect("invariants hold");
    // Fresh compilation from the updated RIB must agree everywhere.
    let fresh: Poptrie<u32> = Builder::new()
        .direct_bits(18)
        .aggregate(false)
        .build(fib.rib());
    let mut rng = Xorshift128::new(2);
    for _ in 0..100_000 {
        let key = rng.next_u32();
        assert_eq!(fib.lookup(key), fresh.lookup(key), "key {key:#010x}");
    }
    // Update stats must reflect real work.
    let st = fib.stats();
    assert_eq!(st.updates, stream.len() as u64);
    assert!(st.nodes_built > 0 && st.nodes_freed > 0);
}

#[test]
fn insert_everything_then_remove_everything() {
    let dataset = base(10_000);
    let mut fib: Fib<u32> = Fib::with_direct_bits(16);
    for &(p, nh) in &dataset.routes {
        fib.insert(p, nh);
    }
    let rib = dataset.to_rib();
    let mut rng = Xorshift128::new(3);
    for _ in 0..50_000 {
        let key = rng.next_u32();
        assert_eq!(fib.lookup(key), Lpm::lookup(&rib, key));
    }
    // Remove in a different (reversed) order; the trie must drain to
    // nothing with zero leaked nodes or leaves.
    for &(p, _) in dataset.routes.iter().rev() {
        assert!(fib.remove(p).is_some());
    }
    let st = fib.poptrie().stats();
    assert_eq!(st.inodes, 0, "leaked internal nodes");
    assert_eq!(fib.lookup(0x0A00_0001), None);
    fib.poptrie().check_invariants().expect("clean after drain");
}

#[test]
fn aggregated_initial_build_plus_incremental_updates() {
    // A FIB initially compiled *with* §3 route aggregation, then patched
    // incrementally (the patch path compiles from the raw RIB): lookups
    // must stay correct even though the structure mixes both compilations.
    let dataset = base(20_000);
    let mut fib = Fib::from_rib(dataset.to_rib(), 18, true);
    let stream = synthesize_update_stream(&dataset, 800, 200);
    for ev in &stream {
        match *ev {
            UpdateEvent::Announce(p, nh) => {
                fib.insert(p, nh);
            }
            UpdateEvent::Withdraw(p) => {
                fib.remove(p);
            }
        }
    }
    let fresh: Poptrie<u32> = Builder::new()
        .direct_bits(18)
        .aggregate(true)
        .build(fib.rib());
    let mut rng = Xorshift128::new(4);
    for _ in 0..100_000 {
        let key = rng.next_u32();
        assert_eq!(fib.lookup(key), fresh.lookup(key));
    }
}

#[test]
fn shared_fib_readers_see_only_complete_states() {
    // Writer churns routes under a stable covering route; readers assert
    // on every single lookup that the answer is one of the two legal
    // values (covering or more-specific) — a torn FIB would surface as
    // an arbitrary wrong next hop or a panic.
    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_direct_bits(16));
    fib.insert("10.0.0.0/8".parse().unwrap(), 1);
    let specific: poptrie_suite::Prefix<u32> = "10.1.2.0/24".parse().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let fib = Arc::clone(&fib);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen_specific = false;
                while !stop.load(Ordering::Relaxed) {
                    match fib.lookup(0x0A01_0203) {
                        Some(1) => {}
                        Some(7) => seen_specific = true,
                        other => panic!("inconsistent FIB state: {other:?}"),
                    }
                }
                seen_specific
            })
        })
        .collect();
    for _ in 0..500 {
        fib.insert(specific, 7);
        fib.remove(specific);
    }
    // Leave the specific route in so late readers can still observe it.
    fib.insert(specific, 7);
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let mut any_seen = false;
    for r in readers {
        any_seen |= r.join().expect("reader");
    }
    assert!(any_seen, "no reader ever observed the churned route");
}

#[test]
fn shared_fib_batch_vs_single_updates() {
    let dataset = base(5_000);
    let stream = synthesize_update_stream(&dataset, 300, 100);
    let single: SharedFib<u32> = SharedFib::from_rib(dataset.to_rib(), 16, false);
    let batch: SharedFib<u32> = SharedFib::from_rib(dataset.to_rib(), 16, false);
    for ev in &stream {
        match *ev {
            UpdateEvent::Announce(p, nh) => {
                single.insert(p, nh);
            }
            UpdateEvent::Withdraw(p) => {
                single.remove(p);
            }
        }
    }
    batch.update_batch(stream.iter().map(|ev| match *ev {
        UpdateEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
        UpdateEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
    }));
    let mut rng = Xorshift128::new(6);
    for _ in 0..50_000 {
        let key = rng.next_u32();
        assert_eq!(single.lookup(key), batch.lookup(key));
    }
}
