//! Cross-crate incremental-update consistency: replaying synthesized BGP
//! update streams through the §3.5 patch path must leave the FIB
//! equivalent to a from-scratch compilation, with tight allocator
//! accounting, and lock-free readers must see consistent snapshots
//! throughout.

use poptrie_suite::poptrie::sync::{RouteUpdate, SharedFib};
use poptrie_suite::poptrie::{Applied, PoptrieConfig};
use poptrie_suite::tablegen::{
    churn_stream, ipv6_dataset, synthesize_update_stream, ChurnConfig, ChurnEvent, TableKind,
    TableSpec, UpdateEvent,
};
use poptrie_suite::traffic::Xorshift128;
use poptrie_suite::{Builder, Fib, Lpm, Poptrie, Prefix};

/// The config the replay suites use: direct-pointing `s`, no aggregation.
fn cfg(s: u8) -> PoptrieConfig {
    PoptrieConfig::new()
        .direct_bits(s)
        .aggregate(false)
        .build()
        .unwrap()
}
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Apply `stream` to `fib`, auditing the compiled structure every
/// `audit_every` events, and return the number of *effective* events —
/// the ones that actually changed the RIB (a re-announcement of the
/// current next hop or a withdrawal of an absent prefix is a no-op and
/// is not counted by `UpdateStats::updates`).
fn replay_audited(fib: &mut Fib<u32>, stream: &[UpdateEvent], audit_every: usize) -> u64 {
    let mut effective = 0u64;
    for (i, ev) in stream.iter().enumerate() {
        match *ev {
            UpdateEvent::Announce(p, nh) => {
                if fib.insert(p, nh).unwrap().changed() {
                    effective += 1;
                }
            }
            UpdateEvent::Withdraw(p) => {
                if fib.remove(p).unwrap().changed() {
                    effective += 1;
                }
            }
        }
        if (i + 1).is_multiple_of(audit_every) {
            fib.poptrie()
                .audit()
                .unwrap_or_else(|e| panic!("audit after event {i}: {e}"));
        }
    }
    effective
}

fn base(n: usize) -> poptrie_suite::tablegen::Dataset {
    TableSpec {
        name: format!("inc-{n}"),
        prefixes: n,
        next_hops: 16,
        kind: TableKind::RouteViews,
    }
    .generate()
}

#[test]
fn replay_matches_rebuild() {
    let dataset = base(20_000);
    let stream = synthesize_update_stream(&dataset, 1_500, 500);
    let mut fib = Fib::compile(dataset.to_rib(), cfg(18));
    let effective = replay_audited(&mut fib, &stream, 250);
    fib.poptrie().check_invariants().expect("invariants hold");
    // Fresh compilation from the updated RIB must agree everywhere.
    let fresh: Poptrie<u32> = Builder::new()
        .direct_bits(18)
        .aggregate(false)
        .build(fib.rib());
    let mut rng = Xorshift128::new(2);
    for _ in 0..100_000 {
        let key = rng.next_u32();
        assert_eq!(fib.lookup(key), fresh.lookup(key), "key {key:#010x}");
    }
    // Update stats count exactly the effective events: the synthesized
    // stream contains path changes that re-announce the current next hop
    // (no-ops), which must not be counted — or patched.
    let st = fib.stats();
    assert_eq!(st.updates, effective);
    assert!(st.updates < stream.len() as u64, "stream had no no-ops");
    assert!(st.nodes_allocated > 0 && st.nodes_freed > 0);
    fib.poptrie().audit().expect("final audit");
}

/// The IPv6 counterpart of `replay_matches_rebuild`: adversarial churn
/// over a synthesized RouteViews-style v6 table, audited every 250
/// events, then compared against a from-scratch compilation.
#[test]
fn replay_matches_rebuild_v6() {
    let dataset = ipv6_dataset("RV6-linx-p0");
    let mut fib: Fib<u128> = Fib::compile(dataset.to_rib(), cfg(16));
    let stream = churn_stream::<u128>(&ChurnConfig {
        seed: 0x6666_0001,
        events: 2_000,
        direct_bits: 16,
        pool: 192,
        max_nh: 13,
    });
    let mut effective = 0u64;
    for (i, ev) in stream.iter().enumerate() {
        match *ev {
            ChurnEvent::Announce(p, nh) => {
                if fib.insert(p, nh).unwrap().changed() {
                    effective += 1;
                }
            }
            ChurnEvent::Withdraw(p) => {
                if fib.remove(p).unwrap().changed() {
                    effective += 1;
                }
            }
        }
        if (i + 1).is_multiple_of(250) {
            fib.poptrie()
                .audit()
                .unwrap_or_else(|e| panic!("v6 audit after event {i}: {e}"));
        }
    }
    assert_eq!(fib.stats().updates, effective);
    let fresh: Poptrie<u128> = Builder::new()
        .direct_bits(16)
        .aggregate(false)
        .build(fib.rib());
    assert_eq!(fib.poptrie().ranges(), fresh.ranges());
}

/// Pinned-seed regressions: minimized reproductions of the bugs the
/// churn fuzzer flushed out, kept as fixed tests so they can never come
/// back silently.
mod pinned {
    use super::*;

    /// A no-op announce (same prefix, same next hop) used to increment
    /// `UpdateStats::updates` even though no patch work happened, so the
    /// §4.9 per-update work averages were diluted by free events.
    #[test]
    fn noop_announces_do_no_work() {
        let mut fib: Fib<u32> = Fib::with_config(cfg(16));
        let p: Prefix<u32> = "192.0.2.0/24".parse().unwrap();
        fib.insert(p, 7).unwrap();
        let before = fib.stats();
        for _ in 0..100 {
            assert_eq!(fib.insert(p, 7), Ok(Applied::Unchanged(7)));
            assert_eq!(
                fib.remove("198.51.100.0/24".parse().unwrap()),
                Ok(Applied::Absent)
            );
        }
        assert_eq!(fib.stats(), before, "no-ops must not move any counter");
    }

    /// Announce and withdraw through *different* non-canonical spellings
    /// of one prefix: both must canonicalize to the same route, and the
    /// whole direct-slot range of the short prefix must be patched (a
    /// spelling-derived slot range would leave stale slots behind).
    #[test]
    fn non_canonical_spellings_are_one_route() {
        let mut fib: Fib<u32> = Fib::with_config(cfg(18));
        // "10.255.238.119/12" canonicalizes to 10.240.0.0/12.
        fib.insert(Prefix::new(0x0AFF_EE77, 12), 3).unwrap();
        assert_eq!(fib.lookup(0x0AF0_0000), Some(3));
        assert_eq!(fib.lookup(0x0AFF_FFFF), Some(3));
        assert_eq!(fib.lookup(0x0AEF_FFFF), None);
        assert_eq!(fib.lookup(0x0B00_0000), None);
        // Withdraw via a different host-bit pattern of the same /12.
        assert_eq!(
            fib.remove(Prefix::new(0x0AF1_2345, 12)),
            Ok(Applied::Withdrawn(3))
        );
        assert_eq!(fib.lookup(0x0AF0_0000), None);
        fib.poptrie().audit().expect("audit after sloppy churn");
        assert_eq!(fib.poptrie().stats().inodes, 0, "trie must drain");
    }
}

#[test]
fn insert_everything_then_remove_everything() {
    let dataset = base(10_000);
    let mut fib: Fib<u32> = Fib::with_config(cfg(16));
    for &(p, nh) in &dataset.routes {
        fib.insert(p, nh).unwrap();
    }
    let rib = dataset.to_rib();
    let mut rng = Xorshift128::new(3);
    for _ in 0..50_000 {
        let key = rng.next_u32();
        assert_eq!(fib.lookup(key), Lpm::lookup(&rib, key));
    }
    // Remove in a different (reversed) order; the trie must drain to
    // nothing with zero leaked nodes or leaves.
    for &(p, _) in dataset.routes.iter().rev() {
        assert!(fib.remove(p).unwrap().changed());
    }
    let st = fib.poptrie().stats();
    assert_eq!(st.inodes, 0, "leaked internal nodes");
    assert_eq!(fib.lookup(0x0A00_0001), None);
    fib.poptrie().check_invariants().expect("clean after drain");
}

#[test]
fn aggregated_initial_build_plus_incremental_updates() {
    // A FIB initially compiled *with* §3 route aggregation, then patched
    // incrementally (the patch path compiles from the raw RIB): lookups
    // must stay correct even though the structure mixes both compilations.
    let dataset = base(20_000);
    let mut fib = Fib::compile(
        dataset.to_rib(),
        PoptrieConfig::new().direct_bits(18).build().unwrap(),
    );
    let stream = synthesize_update_stream(&dataset, 800, 200);
    for ev in &stream {
        match *ev {
            UpdateEvent::Announce(p, nh) => {
                fib.insert(p, nh).unwrap();
            }
            UpdateEvent::Withdraw(p) => {
                fib.remove(p).unwrap();
            }
        }
    }
    let fresh: Poptrie<u32> = Builder::new()
        .direct_bits(18)
        .aggregate(true)
        .build(fib.rib());
    let mut rng = Xorshift128::new(4);
    for _ in 0..100_000 {
        let key = rng.next_u32();
        assert_eq!(fib.lookup(key), fresh.lookup(key));
    }
}

#[test]
fn shared_fib_readers_see_only_complete_states() {
    // Writer churns routes under a stable covering route; readers assert
    // on every single lookup that the answer is one of the two legal
    // values (covering or more-specific) — a torn FIB would surface as
    // an arbitrary wrong next hop or a panic.
    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_config(cfg(16)));
    fib.insert("10.0.0.0/8".parse().unwrap(), 1).unwrap();
    let specific: poptrie_suite::Prefix<u32> = "10.1.2.0/24".parse().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let fib = Arc::clone(&fib);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen_specific = false;
                while !stop.load(Ordering::Relaxed) {
                    match fib.lookup(0x0A01_0203) {
                        Some(1) => {}
                        Some(7) => seen_specific = true,
                        other => panic!("inconsistent FIB state: {other:?}"),
                    }
                }
                seen_specific
            })
        })
        .collect();
    for _ in 0..500 {
        fib.insert(specific, 7).unwrap();
        fib.remove(specific).unwrap();
    }
    // Leave the specific route in so late readers can still observe it.
    fib.insert(specific, 7).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let mut any_seen = false;
    for r in readers {
        any_seen |= r.join().expect("reader");
    }
    assert!(any_seen, "no reader ever observed the churned route");
}

#[test]
fn shared_fib_batch_vs_single_updates() {
    let dataset = base(5_000);
    let stream = synthesize_update_stream(&dataset, 300, 100);
    let single: SharedFib<u32> = SharedFib::compile(dataset.to_rib(), cfg(16));
    let batch: SharedFib<u32> = SharedFib::compile(dataset.to_rib(), cfg(16));
    for ev in &stream {
        match *ev {
            UpdateEvent::Announce(p, nh) => {
                single.insert(p, nh).unwrap();
            }
            UpdateEvent::Withdraw(p) => {
                single.remove(p).unwrap();
            }
        }
    }
    let outcome = batch.update_batch(stream.iter().map(|ev| match *ev {
        UpdateEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
        UpdateEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
    }));
    assert_eq!(outcome.events, stream.len());
    assert_eq!(outcome.version, 1, "one batch publishes one snapshot");
    let mut rng = Xorshift128::new(6);
    for _ in 0..50_000 {
        let key = rng.next_u32();
        assert_eq!(single.lookup(key), batch.lookup(key));
    }
}
