//! Model-based churn fuzzer for the §3.5 incremental-update path.
//!
//! Deterministic adversarial announce/withdraw streams
//! ([`tablegen::churn`]) are replayed simultaneously against
//!
//! * a [`Fib`] using [`UpdateStrategy::NodeRefresh`] (the paper's
//!   node-reuse patch),
//! * a [`Fib`] using [`UpdateStrategy::SubtreeRebuild`],
//! * a plain [`RadixTree`] — the semantic oracle,
//! * a [`SharedFib`] hammered by concurrent reader threads,
//!
//! with three kinds of cross-checks interleaved into the replay:
//!
//! 1. **Targeted probes after every event**: the first/last address of
//!    the touched prefix and its two outside neighbours, plus random
//!    keys, must resolve identically on both strategies and the oracle.
//! 2. **Structural audit every `audit_every` events**:
//!    [`Poptrie::audit`] cross-checks the trie against the buddy
//!    allocators' allocation maps (liveness, aliasing, leaks, counts).
//! 3. **Full-equivalence control every `control_every` events**: the
//!    churned tries' `ranges()` must equal a from-scratch [`Builder`]
//!    compilation of the oracle RIB — complete semantic equality over
//!    the whole key space. Narrow-key configs (`u8`, `u16`) check every
//!    key exhaustively instead.
//!
//! Every stream is pinned by a seed, so a failure replays from the
//! config printed in the panic message.

use poptrie_suite::poptrie::sync::{RouteUpdate, SharedFib};
use poptrie_suite::poptrie::{Applied, PoptrieConfig, UpdateStrategy};
use poptrie_suite::rng::prelude::*;
use poptrie_suite::tablegen::{churn_stream, ChurnConfig, ChurnEvent};
use poptrie_suite::{bitops::Bits, Builder, Fib, Lpm, NextHop, Prefix, RadixTree};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Wrapping successor/predecessor within the key width.
fn step<K: Bits>(k: K, delta: i128) -> K {
    let w = K::ONES.to_u128();
    K::from_u128(k.to_u128().wrapping_add(delta as u128) & w)
}

fn random_key<K: Bits>(rng: &mut StdRng) -> K {
    K::from_u128(rng.gen::<u128>() & K::ONES.to_u128())
}

/// The keys worth probing after an event touching `p`: both ends of the
/// prefix's range and the addresses just outside it.
fn probe_keys<K: Bits>(p: Prefix<K>, rng: &mut StdRng) -> [K; 6] {
    let first = p.first_addr();
    let last = p.last_addr();
    [
        first,
        last,
        step(first, -1),
        step(last, 1),
        random_key(rng),
        // A key *inside* the prefix, uniform over its host bits.
        K::from_u128(
            first.to_u128()
                | (random_key::<K>(rng).to_u128() & !K::prefix_mask(p.len() as u32).to_u128()),
        ),
    ]
}

struct Checkpoints {
    /// Audit the allocator maps every this many events.
    audit_every: usize,
    /// Compare against a from-scratch compilation every this many events.
    control_every: usize,
    /// Exhaustively check every key of the (narrow) key space at each
    /// control point instead of relying on `ranges()` equality.
    exhaustive: bool,
}

/// Replay one seeded churn stream against both update strategies, the
/// RIB oracle, and a reader-hammered `SharedFib`, cross-checking
/// throughout. Returns the number of effective (RIB-changing) events.
fn churn_once<K: Bits>(cfg: ChurnConfig, checks: Checkpoints) -> usize {
    let stream = churn_stream::<K>(&cfg);
    let ctx = format!(
        "seed {} / {} events / s={} / {}-bit keys",
        cfg.seed,
        cfg.events,
        cfg.direct_bits,
        K::BITS
    );

    let mut oracle: RadixTree<K, NextHop> = RadixTree::new();
    let pcfg = PoptrieConfig::new()
        .direct_bits(cfg.direct_bits)
        .aggregate(false)
        .build()
        .unwrap();
    let mut refresh: Fib<K> = Fib::with_config(pcfg);
    let mut rebuild: Fib<K> = Fib::with_config(pcfg);
    rebuild.set_update_strategy(UpdateStrategy::SubtreeRebuild);
    let shared: Arc<SharedFib<K>> = Arc::new(SharedFib::with_config(pcfg));

    // Readers race every writer-published snapshot. They cannot know the
    // oracle's answer at their instant, but any torn state surfaces as an
    // out-of-range next hop or a panic inside the lookup.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let max_nh = cfg.max_nh;
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xBEEF + i));
                let mut lookups = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = random_key::<K>(&mut rng);
                    if let Some(nh) = shared.lookup(key) {
                        assert!(
                            (1..=max_nh).contains(&nh),
                            "reader saw out-of-range next hop {nh}"
                        );
                    }
                    lookups += 1;
                }
                lookups
            })
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAD5E_7003);
    let mut effective = 0usize;
    // The SharedFib replays the same stream in bursts (one published
    // snapshot per burst, the §4.9 batching model) while the readers run.
    let mut burst: Vec<RouteUpdate<K>> = Vec::new();
    for (i, ev) in stream.iter().enumerate() {
        match *ev {
            ChurnEvent::Announce(p, nh) => {
                let old = oracle.insert(p, nh);
                let applied = refresh.insert(p, nh).unwrap();
                assert_eq!(
                    applied.previous(),
                    old,
                    "[{ctx}] Applied::previous() disagrees with the oracle at event {i}"
                );
                assert_eq!(
                    applied.changed(),
                    old != Some(nh),
                    "[{ctx}] Applied::changed() disagrees with the oracle at event {i}"
                );
                assert_eq!(rebuild.insert(p, nh).unwrap(), applied);
                burst.push(RouteUpdate::Announce(p, nh));
                if applied.changed() {
                    effective += 1;
                }
            }
            ChurnEvent::Withdraw(p) => {
                let old = oracle.remove(p);
                let applied = refresh.remove(p).unwrap();
                assert_eq!(
                    applied.previous(),
                    old,
                    "[{ctx}] Applied::previous() disagrees with the oracle at event {i}"
                );
                match applied {
                    Applied::Withdrawn(_) | Applied::Absent => {}
                    other => panic!("[{ctx}] remove returned {other:?} at event {i}"),
                }
                assert_eq!(rebuild.remove(p).unwrap(), applied);
                burst.push(RouteUpdate::Withdraw(p));
                if applied.changed() {
                    effective += 1;
                }
            }
        }
        if burst.len() >= 64 {
            shared.update_batch(burst.drain(..));
        }
        // Targeted probes around the touched prefix, on every event.
        for key in probe_keys(ev.prefix(), &mut rng) {
            let want = Lpm::lookup(&oracle, key);
            let a = refresh.lookup(key);
            let b = rebuild.lookup(key);
            assert!(
                a == want && b == want,
                "event {i} ({ev:?}) [{ctx}]: key {:#x} -> NodeRefresh {a:?}, \
                 SubtreeRebuild {b:?}, oracle {want:?}",
                key.to_u128()
            );
        }
        let n = i + 1;
        if n.is_multiple_of(checks.audit_every) {
            refresh
                .poptrie()
                .audit()
                .unwrap_or_else(|e| panic!("event {i} [{ctx}]: NodeRefresh audit: {e}"));
            rebuild
                .poptrie()
                .audit()
                .unwrap_or_else(|e| panic!("event {i} [{ctx}]: SubtreeRebuild audit: {e}"));
        }
        if n.is_multiple_of(checks.control_every) {
            check_against_fresh(
                &oracle,
                &refresh,
                &rebuild,
                &cfg,
                &checks,
                &format!("event {i}"),
            );
        }
    }

    shared.update_batch(burst.drain(..));
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let lookups = r.join().expect("reader thread panicked");
        assert!(lookups > 0, "reader never ran");
    }

    // Final structural audit and full equivalence check.
    let ra = refresh
        .poptrie()
        .audit()
        .unwrap_or_else(|e| panic!("[{ctx}] final NodeRefresh audit: {e}"));
    let rb = rebuild
        .poptrie()
        .audit()
        .unwrap_or_else(|e| panic!("[{ctx}] final SubtreeRebuild audit: {e}"));
    assert_eq!(ra.leaves, refresh.poptrie().stats().leaves);
    assert_eq!(rb.leaves, rebuild.poptrie().stats().leaves);
    check_against_fresh(&oracle, &refresh, &rebuild, &cfg, &checks, "final");
    // After the final burst the shared FIB has seen the whole stream too.
    let snap = shared.snapshot();
    snap.check_invariants().expect("shared snapshot");
    assert_eq!(
        snap.ranges(),
        refresh.poptrie().ranges(),
        "[{ctx}] shared FIB end state diverged"
    );

    // Both strategies counted exactly the effective events.
    assert_eq!(refresh.stats().updates, effective as u64, "[{ctx}]");
    assert_eq!(rebuild.stats().updates, effective as u64, "[{ctx}]");
    effective
}

fn check_against_fresh<K: Bits>(
    oracle: &RadixTree<K, NextHop>,
    refresh: &Fib<K>,
    rebuild: &Fib<K>,
    cfg: &ChurnConfig,
    checks: &Checkpoints,
    at: &str,
) {
    let fresh: poptrie_suite::Poptrie<K> = Builder::new()
        .direct_bits(cfg.direct_bits)
        .aggregate(false)
        .build(oracle);
    if checks.exhaustive {
        // Narrow keys: walk the entire key space.
        let mut key = K::ZERO;
        loop {
            let want = Lpm::lookup(oracle, key);
            assert_eq!(
                refresh.lookup(key),
                want,
                "{at}: NodeRefresh key {:#x}",
                key.to_u128()
            );
            assert_eq!(
                rebuild.lookup(key),
                want,
                "{at}: SubtreeRebuild key {:#x}",
                key.to_u128()
            );
            assert_eq!(
                fresh.lookup(key),
                want,
                "{at}: fresh key {:#x}",
                key.to_u128()
            );
            if key == K::ONES {
                break;
            }
            key = step(key, 1);
        }
    } else {
        // ranges() enumerates every (start-of-range, next hop) boundary:
        // equality is full semantic equality over the key space.
        let want = fresh.ranges();
        assert_eq!(
            refresh.poptrie().ranges(),
            want,
            "{at}: NodeRefresh ranges diverged"
        );
        assert_eq!(
            rebuild.poptrie().ranges(),
            want,
            "{at}: SubtreeRebuild ranges diverged"
        );
    }
}

/// The acceptance run: 100k+ adversarial events on IPv4-width keys, both
/// strategies, audited throughout.
#[test]
fn churn_100k_events_u32() {
    let effective = churn_once::<u32>(
        ChurnConfig {
            seed: 0x0417_0001,
            events: 100_000,
            direct_bits: 8,
            pool: 256,
            max_nh: 13,
        },
        Checkpoints {
            audit_every: 2_000,
            control_every: 10_000,
            exhaustive: false,
        },
    );
    // The pool guarantees heavy reuse, so a large share of events must be
    // real transitions (sanity that the stream isn't degenerate).
    assert!(effective > 30_000, "only {effective} effective events");
}

/// The acceptance run for IPv6-width keys.
#[test]
fn churn_100k_events_u128() {
    let effective = churn_once::<u128>(
        ChurnConfig {
            seed: 0x0417_0002,
            events: 100_000,
            direct_bits: 8,
            pool: 256,
            max_nh: 13,
        },
        Checkpoints {
            audit_every: 2_000,
            control_every: 10_000,
            exhaustive: false,
        },
    );
    assert!(effective > 30_000, "only {effective} effective events");
}

/// Exhaustive-oracle configs: every key of the `u8` / `u16` spaces is
/// checked at every control point, so nothing hides between probes.
#[test]
fn churn_exhaustive_u8() {
    churn_once::<u8>(
        ChurnConfig {
            seed: 0x0417_0003,
            events: 20_000,
            direct_bits: 4,
            pool: 64,
            max_nh: 7,
        },
        Checkpoints {
            audit_every: 1_000,
            control_every: 2_000,
            exhaustive: true,
        },
    );
}

#[test]
fn churn_exhaustive_u16() {
    churn_once::<u16>(
        ChurnConfig {
            seed: 0x0417_0004,
            events: 10_000,
            direct_bits: 8,
            pool: 128,
            max_nh: 7,
        },
        Checkpoints {
            audit_every: 1_000,
            control_every: 2_000,
            exhaustive: true,
        },
    );
}

/// No direct pointing at all (`s = 0`): the root-node path of the patch
/// logic, which the direct-table configs never touch.
#[test]
fn churn_without_direct_pointing() {
    churn_once::<u32>(
        ChurnConfig {
            seed: 0x0417_0005,
            events: 20_000,
            direct_bits: 0,
            pool: 128,
            max_nh: 13,
        },
        Checkpoints {
            audit_every: 1_000,
            control_every: 5_000,
            exhaustive: false,
        },
    );
}

/// Multi-VRF mode: two tenants on one shared leaf arena, each replaying
/// its own independently seeded churn stream against its own RIB oracle.
///
/// The point is cross-tenant interference: tenant A's announce can retire
/// an extent tenant B still references, or dedup against a block B
/// interned — the oracle probes after every event prove neither ever
/// observes the other's churn, and [`VrfTable::audit`] (which runs
/// `Poptrie::audit` on every table and reconciles the summed leaf-block
/// references against the interner exactly) proves the shared arena's
/// bookkeeping survives the interleaving.
#[test]
fn churn_two_vrfs_on_shared_arena() {
    use poptrie_suite::prelude::{VrfId, VrfTable};

    let pcfg = PoptrieConfig::new()
        .direct_bits(8)
        .aggregate(false)
        .build()
        .unwrap();
    let vrfs: VrfTable<u32> = VrfTable::shared(pcfg, 1 << 18);

    let cfgs = [
        ChurnConfig {
            seed: 0x0417_0007,
            events: 8_000,
            direct_bits: 8,
            pool: 128,
            max_nh: 13,
        },
        ChurnConfig {
            seed: 0x0417_0008,
            events: 8_000,
            direct_bits: 8,
            pool: 128,
            max_nh: 13,
        },
    ];
    let streams: Vec<Vec<ChurnEvent<u32>>> = cfgs.iter().map(churn_stream).collect();
    let ids = [vrfs.create(), vrfs.create()];
    assert_eq!(ids, [VrfId::new(0), VrfId::new(1)]);
    let mut oracles: [RadixTree<u32, NextHop>; 2] = [RadixTree::new(), RadixTree::new()];

    let mut rng = StdRng::seed_from_u64(0x0417_0009);
    for i in 0..streams[0].len().max(streams[1].len()) {
        // Interleave the tenants event by event so retire/intern races on
        // the shared arena actually happen.
        for t in 0..2 {
            let Some(ev) = streams[t].get(i) else {
                continue;
            };
            match *ev {
                ChurnEvent::Announce(p, nh) => {
                    oracles[t].insert(p, nh);
                    vrfs.update_batch(ids[t], [RouteUpdate::Announce(p, nh)])
                        .expect("known VrfId");
                }
                ChurnEvent::Withdraw(p) => {
                    oracles[t].remove(p);
                    vrfs.update_batch(ids[t], [RouteUpdate::Withdraw(p)])
                        .expect("known VrfId");
                }
            }
            // Probe BOTH tenants around the touched prefix: the churned
            // one must track its oracle, the other must be unaffected.
            for key in probe_keys(ev.prefix(), &mut rng) {
                for u in 0..2 {
                    let want = Lpm::lookup(&oracles[u], key);
                    let got = vrfs.snapshot(ids[u]).unwrap().lookup(key);
                    assert_eq!(
                        got, want,
                        "event {i}, tenant {t} churned, tenant {u} probed: key {key:#x}"
                    );
                }
            }
        }
        if (i + 1).is_multiple_of(1_000) {
            vrfs.audit()
                .unwrap_or_else(|e| panic!("group audit after event {i}: {e}"));
        }
    }

    // End state: both tenants oracle-exact over their ranges, group audit
    // (per-table Poptrie::audit + exact interner reconciliation) green.
    vrfs.audit().expect("final group audit");
    for t in 0..2 {
        let fresh: poptrie_suite::Poptrie<u32> = Builder::new()
            .direct_bits(8)
            .aggregate(false)
            .build(&oracles[t]);
        let got = vrfs.get(ids[t]).unwrap().with_fib(|f| f.poptrie().ranges());
        assert_eq!(got, fresh.ranges(), "tenant {t} end state diverged");
    }
    let stats = vrfs.intern_stats().expect("shared mode");
    assert!(stats.dedup_hits > 0, "two tenants never shared an extent");
}

/// The paper's production setting `s = 18`: short prefixes span many
/// direct slots, so each /0–/17 event patches a slot *range*. Fewer
/// events keep the quadratic-ish slot fan-out affordable.
#[test]
fn churn_wide_direct_table_s18() {
    churn_once::<u32>(
        ChurnConfig {
            seed: 0x0417_0006,
            events: 1_500,
            direct_bits: 18,
            pool: 96,
            max_nh: 13,
        },
        Checkpoints {
            audit_every: 250,
            control_every: 500,
            exhaustive: false,
        },
    );
}
