//! End-to-end tests of the BGP control-plane path: the checked-in
//! BGP4MP fixture parses with exact announce/withdraw accounting, a
//! session-driven replay through the engine's writer reconverges to
//! the RIB oracle exactly, the writer survives a poisoned publish
//! burst (panic is caught, counted and the writer resumes), and the
//! out-of-range engine entry points return errors instead of
//! panicking.

use poptrie_suite::bgp::wire::{Message, OpenMsg};
use poptrie_suite::bgp::{Event, NextHopInterner, RouteEvent, Session, SessionConfig, State};
use poptrie_suite::engine::{BadIndex, Engine, EngineConfig};
use poptrie_suite::poptrie::sync::{RouteUpdate, SharedFib};
use poptrie_suite::poptrie::PoptrieConfig;
use poptrie_suite::rib::NO_ROUTE;
use poptrie_suite::tablegen::mrt::parse_bgp4mp;
use poptrie_suite::{NextHop, RadixTree};
use std::net::IpAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FIXTURE: &str = "tests/data/updates.bgp4mp";

fn pcfg() -> PoptrieConfig {
    PoptrieConfig::new().direct_bits(8).build().unwrap()
}

fn handshake(s: &mut Session, now: u64) {
    s.connected(now);
    s.recv(
        now,
        &Message::Open(OpenMsg {
            version: 4,
            asn: 65_001,
            hold_time: 90,
            bgp_id: 0xC000_0201,
            params: Vec::new(),
        })
        .encode(),
    );
    s.recv(now, &Message::Keepalive.encode());
    assert_eq!(s.state(), State::Established);
}

/// The CI smoke contract: the fixture is a fixed artifact whose
/// accounting the replay gates on. If this test moves, regenerate the
/// fixture (`repro bgp --write-fixture`) and update the constants.
#[test]
fn fixture_parses_with_exact_accounting() {
    let bytes = std::fs::read(FIXTURE).expect("checked-in fixture");
    let trace = parse_bgp4mp(&bytes).expect("fixture is well-formed");
    assert_eq!(trace.records.len(), 84);
    assert_eq!(trace.accounting(), (73, 11));
    // Encode/parse round trip preserves every record.
    let again = parse_bgp4mp(&trace.encode()).unwrap();
    assert_eq!(again.records, trace.records);
    // Replay offsets are monotone and anchored at zero.
    let offsets = trace.replay_offsets_us(1.0);
    assert_eq!(offsets[0], 0);
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
}

/// Replay the fixture through the session FSM into the engine writer
/// and require the served FIB to match a RIB oracle route for route,
/// with a non-empty convergence-lag histogram.
#[test]
fn session_replay_reconverges_exactly() {
    let bytes = std::fs::read(FIXTURE).expect("checked-in fixture");
    let trace = parse_bgp4mp(&bytes).unwrap();

    // Oracle: the trace applied to a RadixTree, next hops densified in
    // arrival order — the same procedure the replay uses.
    let mut oracle: RadixTree<u32, NextHop> = RadixTree::new();
    let mut oracle_interner = NextHopInterner::new();
    let mut touched = Vec::new();
    for r in &trace.records {
        if let Ok(Message::Update(u)) = r.parse() {
            if let Some(nh) = u.next_hop_v4 {
                let id = oracle_interner.intern(IpAddr::V4(nh));
                for p in &u.announced_v4 {
                    oracle.insert(*p, id);
                    touched.push(*p);
                }
            }
            for p in &u.withdrawn_v4 {
                oracle.remove(*p);
                touched.push(*p);
            }
        }
    }

    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(RadixTree::new(), pcfg()));
    let engine = Engine::start(
        Arc::clone(&fib),
        EngineConfig::new(1).pin_workers(false).coalesce_window(8),
    );
    let control = engine.control();
    let telemetry = engine.telemetry();

    let mut session = Session::new(SessionConfig::default());
    session.start(0);
    handshake(&mut session, 0);
    let mut interner = NextHopInterner::new();
    let mut sent = 0u64;
    for (i, r) in trace.records.iter().enumerate() {
        let now = (i as u64 + 1) * 1_000_000;
        session.recv(now, &r.message);
        session.drain_actions();
        for ev in session.drain_events() {
            if let Event::Routes { routes, .. } = ev {
                for route in routes {
                    let update = match route {
                        RouteEvent::AnnounceV4(p, nh) => {
                            RouteUpdate::Announce(p, interner.intern(IpAddr::V4(nh)))
                        }
                        RouteEvent::WithdrawV4(p) => RouteUpdate::Withdraw(p),
                        _ => continue,
                    };
                    let mut u = update;
                    while let Err(back) = control.send(u) {
                        u = back;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    sent += 1;
                }
            }
        }
    }
    assert_eq!(session.state(), State::Established);
    assert_eq!(session.stats().parse_errors.get(), 0);
    assert!(sent > 0);

    let deadline = Instant::now() + Duration::from_secs(10);
    while telemetry.update_events.get() < sent && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = engine.shutdown(Duration::from_secs(10));
    assert_eq!(report.update_events, sent);
    assert!(
        report.convergence.samples > 0,
        "convergence histogram empty"
    );
    assert_eq!(report.writer_respawns, 0);

    for p in &touched {
        let key = p.first_addr();
        let want = oracle.lookup(key).copied().unwrap_or(NO_ROUTE);
        let got = fib.lookup(key).unwrap_or(NO_ROUTE);
        assert_eq!(got, want, "FIB diverged from oracle at {p}");
    }
}

/// A publish hook that panics poisons the writer thread; the engine
/// must catch it, count the respawn in the report, and keep applying
/// later updates.
#[test]
fn writer_respawns_after_poisoned_publish_burst() {
    let poison = Arc::new(AtomicBool::new(true));
    let hook_poison = Arc::clone(&poison);
    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(RadixTree::new(), pcfg()));
    let engine = Engine::start(
        Arc::clone(&fib),
        EngineConfig::new(1)
            .pin_workers(false)
            .coalesce_window(4)
            .on_publish(Arc::new(move |_, _| {
                if hook_poison.load(Ordering::Relaxed) {
                    panic!("poisoned publish burst");
                }
            })),
    );
    let control = engine.control();
    let telemetry = engine.telemetry();

    control
        .send(RouteUpdate::Announce("10.0.0.0/8".parse().unwrap(), 7))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while telemetry.writer_respawns.get() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        telemetry.writer_respawns.get() >= 1,
        "writer never respawned"
    );

    // The writer is back: a clean burst must still land in the FIB.
    poison.store(false, Ordering::Relaxed);
    control
        .send(RouteUpdate::Announce("192.0.2.0/24".parse().unwrap(), 9))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while fib.lookup(0xC000_0201).is_none() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(fib.lookup(0xC000_0201), Some(9));

    let report = engine.shutdown(Duration::from_secs(10));
    assert!(report.writer_respawns >= 1);
    // The poisoned burst was applied before the hook panicked; nothing
    // is lost across the respawn.
    assert_eq!(fib.lookup(0x0A00_0001), Some(7));
}

/// Out-of-range worker and source indices are rejected with a typed
/// error (or `None`), never a panic: these entry points take operator
/// input.
#[test]
fn out_of_range_indices_are_errors_not_panics() {
    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(RadixTree::new(), pcfg()));
    let engine = Engine::start(Arc::clone(&fib), EngineConfig::new(2).pin_workers(false));

    let err = engine.inject_panic(usize::MAX).unwrap_err();
    assert_eq!(
        err,
        BadIndex {
            index: usize::MAX,
            len: 2
        }
    );
    assert!(err.to_string().contains("out of range"));
    engine.inject_panic(1).unwrap(); // in range still works

    // no sources registered
    assert!(engine
        .ingress_for(poptrie_suite::prelude::SourceId::new(0))
        .is_err());
    assert!(engine.telemetry().source(usize::MAX).is_none());
    assert!(engine.telemetry().source(0).is_none());

    engine.shutdown(Duration::from_secs(10));
}
