//! End-to-end integration test of the sharded forwarding engine.
//!
//! A 4-worker engine is driven by a real feeder (bounded queues,
//! backpressure, retries) while a seeded BGP churn stream runs through
//! the control-plane writer. Every served batch is recorded by the
//! `on_batch` hook together with the snapshot version it ran against;
//! every published update burst is recorded by the `on_publish` hook.
//! After drain-shutdown the test replays the publish log through a
//! [`RadixTree`] oracle and asserts each batch's next hops are **exactly**
//! what the oracle says the FIB contained at that version — the RCU
//! epoch-consistency contract, checked per batch, under concurrency.
//!
//! The driver also keeps its own tallies of everything it submitted, so
//! the engine's telemetry is reconciled against ground truth: no packet,
//! batch, drop, publish or control event is lost or double counted.

use poptrie_suite::poptrie::sync::{RouteUpdate, SharedFib};
use poptrie_suite::poptrie::PoptrieConfig;
use poptrie_suite::prelude::{Engine, EngineConfig};
use poptrie_suite::rib::NO_ROUTE;
use poptrie_suite::tablegen::{churn_stream, ChurnConfig, ChurnEvent};
use poptrie_suite::{Lpm, NextHop, RadixTree};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One recorded batch: the keys, the next hops the worker produced, and
/// the snapshot version the lookup ran against.
type ServedBatch = (Vec<u32>, Vec<NextHop>, u64);

/// One recorded publish: the snapshot version it produced and the
/// coalesced updates applied to reach it.
type Publish = (u64, Vec<RouteUpdate<u32>>);

fn pcfg() -> PoptrieConfig {
    PoptrieConfig::new()
        .direct_bits(8)
        .aggregate(false)
        .build()
        .unwrap()
}

/// The seeded churn stream: the first `seed_events` announces become the
/// initial table, the rest replays through the engine's control plane.
fn stream() -> Vec<ChurnEvent<u32>> {
    churn_stream::<u32>(&ChurnConfig {
        seed: 0xE2E_0001,
        events: 2_000,
        direct_bits: 8,
        pool: 192,
        max_nh: 13,
    })
}

#[test]
fn four_workers_under_churn_are_oracle_exact_and_reconcile() {
    let events = stream();
    let (seed_events, live_events) = events.split_at(400);

    // Initial table: replay the seed slice into both the engine's FIB
    // and the oracle's starting RIB.
    let mut rib: RadixTree<u32, NextHop> = RadixTree::new();
    let mut oracle: RadixTree<u32, NextHop> = RadixTree::new();
    for ev in seed_events {
        match *ev {
            ChurnEvent::Announce(p, nh) => {
                rib.insert(p, nh);
                oracle.insert(p, nh);
            }
            ChurnEvent::Withdraw(p) => {
                rib.remove(p);
                oracle.remove(p);
            }
        }
    }
    let fib = Arc::new(SharedFib::compile(rib, pcfg()));
    let v0 = fib.version();

    let served: Arc<Mutex<Vec<ServedBatch>>> = Arc::new(Mutex::new(Vec::new()));
    let published: Arc<Mutex<Vec<Publish>>> = Arc::new(Mutex::new(Vec::new()));
    let engine = Engine::start(
        Arc::clone(&fib),
        EngineConfig::new(4)
            .queue_capacity(8) // small queues: backpressure really fires
            .coalesce_window(32)
            .on_batch({
                let served = Arc::clone(&served);
                Arc::new(move |_, keys: &[u32], out: &[NextHop], version| {
                    served
                        .lock()
                        .unwrap()
                        .push((keys.to_vec(), out.to_vec(), version));
                })
            })
            .on_publish({
                let published = Arc::clone(&published);
                Arc::new(move |outcome, updates: &[RouteUpdate<u32>]| {
                    published
                        .lock()
                        .unwrap()
                        .push((outcome.version, updates.to_vec()));
                })
            }),
    );

    // Drive it: 600 batches of 256 keys, a burst of churn every 4th
    // batch. The feeder retries shed batches (each refusal is a counted
    // drop), so everything submitted is eventually served.
    let ingress = engine.ingress();
    let control = engine.control();
    let mut submitted_batches = 0u64;
    let mut submitted_packets = 0u64;
    let mut driver_drops = 0u64;
    let mut sent_events = 0u64;
    let mut churn_iter = live_events.iter().cycle();
    for i in 0..600u32 {
        if i % 4 == 0 {
            for _ in 0..4 {
                let update = match *churn_iter.next().unwrap() {
                    ChurnEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
                    ChurnEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
                };
                assert!(control.send(update).is_ok(), "control channel overflowed");
                sent_events += 1;
            }
        }
        let keys: Vec<u32> = (0..256u32)
            .map(|j| i.wrapping_mul(0x9E37_79B9) ^ (j << 8))
            .collect();
        let mut batch: Arc<[u32]> = keys.into();
        loop {
            match ingress.try_submit(batch) {
                Ok(_) => break,
                Err(refused) => {
                    driver_drops += 1;
                    batch = refused;
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
        submitted_batches += 1;
        submitted_packets += 256;
    }

    let report = engine.shutdown(Duration::from_secs(30));

    // --- shutdown contract: everything drained, nothing leaked.
    assert!(report.drained_clean, "shutdown left queued work behind");
    assert_eq!(report.leaked_threads, 0, "threads failed to join");

    // --- telemetry reconciles exactly with the driver's own tallies.
    assert_eq!(report.batches, submitted_batches, "served == submitted");
    assert_eq!(
        report.packets, submitted_packets,
        "packets == submitted keys"
    );
    assert_eq!(report.dropped_batches, driver_drops, "drop accounting");
    assert_eq!(report.update_events, sent_events, "control events consumed");
    assert_eq!(report.control_dropped, 0, "no control events refused");
    assert_eq!(
        report.workers.iter().map(|w| w.batches).sum::<u64>(),
        report.batches,
        "per-worker batches sum to the total"
    );
    assert_eq!(report.workers.len(), 4);
    for (i, w) in report.workers.iter().enumerate() {
        assert!(w.batches > 0, "worker {i} never served a batch");
        assert_eq!(w.respawns, 0, "worker {i} panicked");
    }

    // --- the hooks saw the same totals.
    let served = Arc::try_unwrap(served).unwrap().into_inner().unwrap();
    let published = Arc::try_unwrap(published).unwrap().into_inner().unwrap();
    assert_eq!(
        served.len() as u64,
        report.batches,
        "on_batch fired per batch"
    );
    assert_eq!(
        published.len() as u64,
        report.publishes,
        "on_publish fired per publish"
    );
    assert_eq!(
        fib.version(),
        v0 + report.publishes,
        "one version per publish"
    );
    assert!(
        report.publishes > 10,
        "churn produced too few publishes to be a real test"
    );
    let coalesced_survivors: u64 = published.iter().map(|(_, u)| u.len() as u64).sum();
    assert_eq!(
        coalesced_survivors + report.updates_coalesced,
        report.update_events,
        "survivors + merged == events"
    );

    // --- oracle replay: every batch is exact for the version it served.
    // The single writer publishes versions in order; batches (from four
    // threads) are sorted by version, then the oracle RIB is advanced
    // through the publish log in lockstep.
    let mut served = served;
    served.sort_by_key(|&(_, _, version)| version);
    let mut publishes = published.iter().peekable();
    for (keys, out, version) in &served {
        assert!(*version >= v0, "batch served a pre-engine version");
        while publishes.peek().is_some_and(|(v, _)| v <= version) {
            let (_, updates) = publishes.next().unwrap();
            for u in updates {
                match *u {
                    RouteUpdate::Announce(p, nh) => {
                        oracle.insert(p, nh);
                    }
                    RouteUpdate::Withdraw(p) => {
                        oracle.remove(p);
                    }
                }
            }
        }
        for (k, got) in keys.iter().zip(out) {
            let want = Lpm::lookup(&oracle, *k).unwrap_or(NO_ROUTE);
            assert_eq!(
                *got, want,
                "key {k:#010x} at version {version}: engine said {got}, oracle says {want}"
            );
        }
    }
}

/// A worker panic mid-run is isolated: the faulting batch is the only
/// loss, the worker respawns on the same thread, and shutdown still
/// drains clean.
#[test]
fn panic_isolation_respawns_and_drains_clean() {
    let mut rib: RadixTree<u32, NextHop> = RadixTree::new();
    rib.insert("0.0.0.0/0".parse().unwrap(), 1);
    let fib = Arc::new(SharedFib::compile(rib, pcfg()));
    let engine = Engine::start(Arc::clone(&fib), EngineConfig::new(2).queue_capacity(8));

    let ingress = engine.ingress();
    let batch: Arc<[u32]> = (0..64u32).collect::<Vec<_>>().into();
    for _ in 0..10 {
        while ingress.try_submit_to(0, Arc::clone(&batch)).is_err() {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    engine.inject_panic(0).unwrap();
    for _ in 0..10 {
        while ingress.try_submit_to(0, Arc::clone(&batch)).is_err() {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    let report = engine.shutdown(Duration::from_secs(30));
    assert!(report.drained_clean);
    assert_eq!(report.leaked_threads, 0);
    assert_eq!(report.workers[0].respawns, 1, "exactly one respawn");
    // The panicking batch is consumed but not served; every other batch is.
    assert_eq!(report.workers[0].batches, 19);
    assert_eq!(report.workers[0].packets, 19 * 64);
}
