//! Integration checks on the dataset synthesizer as consumed by the
//! harness: the structural properties the evaluation depends on must hold
//! on harness-scale tables (the per-crate unit tests cover small scales).

use poptrie_suite::baselines::{Dxr, DxrConfig, Sail};
use poptrie_suite::tablegen::{self, expand_syn1, expand_syn2, TableKind, TableSpec};
use poptrie_suite::Builder;

#[test]
fn all_table1_rows_are_generatable_as_specs() {
    // Every Table 1 row must have a spec; generate scaled-down replicas
    // (the full 520K-route versions are exercised by the harness and the
    // ignored full-scale test).
    for info in tablegen::table1().iter().step_by(7) {
        let d = TableSpec {
            name: info.name.to_string(),
            prefixes: 25_000,
            next_hops: info.next_hops,
            kind: info.kind,
        }
        .generate();
        assert_eq!(d.len(), 25_000, "{}", info.name);
        assert_eq!(d.next_hop_count(), info.next_hops as usize, "{}", info.name);
    }
}

#[test]
fn structural_limits_scale_correctly_downward() {
    // At reduced scale, everything must compile (no false positives in
    // the limit checks) and SYN expansion must grow tables monotonically.
    let base = TableSpec {
        name: "props-real".into(),
        prefixes: 40_000,
        next_hops: 13,
        kind: TableKind::Real,
    }
    .generate();
    let syn1 = expand_syn1(&base);
    let syn2 = expand_syn2(&base);
    assert!(base.len() < syn1.len() && syn1.len() < syn2.len());
    for d in [&base, &syn1, &syn2] {
        let rib = d.to_rib();
        assert!(Sail::from_rib(&rib).is_ok(), "{}", d.name);
        assert!(Dxr::from_rib(&rib, DxrConfig::d18r()).is_ok(), "{}", d.name);
        let t: poptrie_suite::Poptrie<u32> = Builder::new().direct_bits(18).build(&rib);
        t.check_invariants().unwrap();
    }
}

#[test]
fn syn_growth_ratio_matches_table5() {
    // Paper: 531,489 -> 764,847 (SYN1, x1.44) -> 885,645 (SYN2, x1.67).
    // The ratio is scale-invariant for a fixed length mix; check it on a
    // reduced REAL table.
    let base = TableSpec {
        name: "props-ratio".into(),
        prefixes: 60_000,
        next_hops: 13,
        kind: TableKind::Real,
    }
    .generate();
    let r1 = expand_syn1(&base).len() as f64 / base.len() as f64;
    let r2 = expand_syn2(&base).len() as f64 / base.len() as f64;
    assert!((1.25..=1.55).contains(&r1), "SYN1 ratio {r1:.3}");
    assert!((1.50..=1.80).contains(&r2), "SYN2 ratio {r2:.3}");
}

#[test]
fn parse_roundtrip_through_files() {
    // The text format round-trips a generated table through disk — the
    // path users with real RIBs take.
    let d = TableSpec {
        name: "props-io".into(),
        prefixes: 5_000,
        next_hops: 8,
        kind: TableKind::RouteViews,
    }
    .generate();
    let text = tablegen::write_routes_v4(&d.routes);
    let dir = std::env::temp_dir().join("poptrie-suite-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("props-io.rib");
    std::fs::write(&path, &text).unwrap();
    let read = std::fs::read_to_string(&path).unwrap();
    let routes = tablegen::parse_routes_v4(&read).unwrap();
    assert_eq!(routes, d.routes);
    std::fs::remove_file(&path).ok();
}

#[test]
fn update_stream_replays_cleanly_against_its_base() {
    let base = TableSpec {
        name: "props-upd".into(),
        prefixes: 10_000,
        next_hops: 16,
        kind: TableKind::RouteViews,
    }
    .generate();
    let stream = tablegen::synthesize_update_stream(&base, 700, 300);
    let cfg = poptrie_suite::poptrie::PoptrieConfig::new()
        .direct_bits(16)
        .aggregate(false)
        .build()
        .unwrap();
    let mut fib = poptrie_suite::Fib::compile(base.to_rib(), cfg);
    let mut announced = 0;
    let mut withdrawn = 0;
    for ev in stream {
        match ev {
            tablegen::UpdateEvent::Announce(p, nh) => {
                fib.insert(p, nh).unwrap();
                announced += 1;
            }
            tablegen::UpdateEvent::Withdraw(p) => {
                assert!(
                    fib.remove(p).unwrap().changed(),
                    "withdraw of absent prefix"
                );
                withdrawn += 1;
            }
        }
    }
    assert_eq!((announced, withdrawn), (700, 300));
    fib.poptrie().check_invariants().unwrap();
}
