//! End-to-end flight-recorder tests (DESIGN.md §12), compiled only
//! with `--features trace`.
//!
//! The ring-level invariants (wraparound, writer-vs-drainer race,
//! deterministic sampling gate) live in `poptrie-trace`'s own suite;
//! these tests exercise the cross-crate promises: a convergence span
//! allocated by the BGP session must surface in the drained rings as
//! writer apply, per-replica publish and a worker snapshot adoption
//! covering its version, and the engine's per-batch sampling must be
//! deterministic — the same offered batch count yields the same event
//! count, full or sampled.

#![cfg(feature = "trace")]

use poptrie::sync::{RouteUpdate, SharedFib};
use poptrie::PoptrieConfig;
use poptrie_bgp::wire::{Message, OpenMsg, UpdateMsg};
use poptrie_bgp::{Event, NextHopInterner, RouteEvent, Session, SessionConfig, State};
use poptrie_engine::{Engine, EngineConfig};
use poptrie_rib::{Prefix, RadixTree};
use poptrie_trace::{EventKind, Recorder, TraceConfig};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;
use std::time::Duration;

fn empty_fib() -> Arc<SharedFib<u32>> {
    let pcfg = PoptrieConfig::new().direct_bits(16).build().unwrap();
    Arc::new(SharedFib::compile(RadixTree::new(), pcfg))
}

/// Establish a session with an in-memory handshake.
fn established_session() -> Session {
    let mut session = Session::new(SessionConfig::default());
    session.start(0);
    session.connected(1);
    session.recv(
        2,
        &Message::Open(OpenMsg {
            version: 4,
            asn: 65_001,
            hold_time: 90,
            bgp_id: 0xC000_0201,
            params: Vec::new(),
        })
        .encode(),
    );
    session.recv(3, &Message::Keepalive.encode());
    assert_eq!(session.state(), State::Established);
    session
}

#[test]
fn span_chain_reaches_every_replica_and_a_lookup() {
    const UPDATES: u32 = 32;
    let rec = Recorder::new(TraceConfig {
        capacity: 1 << 12,
        sample: 1,
    });
    let driver = rec.register("driver");
    let replicas = 2usize;
    let engine = Engine::start(
        empty_fib(),
        EngineConfig::new(2)
            .pin_workers(false)
            .numa_replicas(replicas)
            .coalesce_window(8)
            .recorder(rec.clone()),
    );
    let control = engine.control();
    let ingress = engine.ingress();

    // The session allocates the spans; the driver forwards them.
    let mut session = established_session();
    for i in 1..=UPDATES {
        session.recv(
            10 + u64::from(i),
            &Message::Update(UpdateMsg {
                announced_v4: vec![Prefix::new(i << 16, 16)],
                next_hop_v4: Some(Ipv4Addr::new(192, 0, 2, (i % 250 + 1) as u8)),
                ..UpdateMsg::default()
            })
            .encode(),
        );
    }
    let mut interner = NextHopInterner::new();
    let mut forwarded = 0u64;
    for ev in session.drain_events() {
        if let Event::Routes { span, routes } = ev {
            driver.record(EventKind::SpanAccept, span, routes.len() as u64, 0);
            for r in routes {
                let mut u = match r {
                    RouteEvent::AnnounceV4(p, nh) => {
                        RouteUpdate::Announce(p, interner.intern(IpAddr::V4(nh)))
                    }
                    RouteEvent::WithdrawV4(p) => RouteUpdate::Withdraw(p),
                    _ => continue,
                };
                loop {
                    match control.send_spanned(span, u) {
                        Ok(()) => break,
                        Err(back) => {
                            u = back;
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                }
                forwarded += 1;
            }
        }
    }
    assert_eq!(forwarded, u64::from(UPDATES));
    assert_eq!(session.spans_allocated(), u64::from(UPDATES));

    // Let the writer apply everything, then serve one batch per worker
    // so each adopts the final version.
    while control.pending() > 0 {
        std::thread::sleep(Duration::from_micros(200));
    }
    std::thread::sleep(Duration::from_millis(20));
    let keys: Arc<[u32]> = Arc::from((0..256u32).map(|i| i << 16).collect::<Vec<u32>>());
    for w in 0..engine.workers() {
        let mut batch = Arc::clone(&keys);
        while let Err(back) = ingress.try_submit_to(w, batch) {
            batch = back;
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    std::thread::sleep(Duration::from_millis(20));
    let report = engine.shutdown(Duration::from_secs(30));
    assert_eq!(report.fib_replicas, replicas);

    let rings = rec.drain();
    assert_eq!(
        rings.iter().map(|r| r.overwritten).sum::<u64>(),
        0,
        "rings sized for the workload must not overwrite"
    );
    let mut accepted = std::collections::HashSet::new();
    let mut applied = std::collections::HashMap::new();
    let mut adopted_max = 0u64;
    let mut replica_publishes = 0u64;
    for ring in &rings {
        for ev in &ring.events {
            match ev.event_kind() {
                Some(EventKind::SpanAccept) => {
                    accepted.insert(ev.span);
                }
                Some(EventKind::UpdateApply) => {
                    applied.insert(ev.span, ev.arg);
                }
                Some(EventKind::ReplicaPublish) if ev.aux > 0 => replica_publishes += 1,
                Some(EventKind::SnapshotAdopt) => adopted_max = adopted_max.max(ev.arg),
                _ => {}
            }
        }
    }
    assert_eq!(accepted.len(), UPDATES as usize, "every span accepted");
    for span in &accepted {
        let version = applied
            .get(span)
            .unwrap_or_else(|| panic!("span {span} accepted but never applied"));
        assert!(
            *version <= adopted_max,
            "span {span} published as version {version} but max adopted is {adopted_max}"
        );
    }
    assert!(
        replica_publishes > 0,
        "non-primary replicas must record publishes"
    );
}

/// The same deterministic batch count through a one-worker engine must
/// produce exactly the expected number of lookup slices: all of them at
/// sample 1, one in four at sample 4, with the complement accounted in
/// the ring's sampled-out counter.
#[test]
fn engine_sampling_is_deterministic() {
    const BATCHES: u64 = 256;

    fn lookup_starts(sample: u64) -> (u64, u64) {
        let rec = Recorder::new(TraceConfig {
            capacity: 1 << 12,
            sample,
        });
        let engine = Engine::start(
            empty_fib(),
            EngineConfig::new(1)
                .pin_workers(false)
                .recorder(rec.clone()),
        );
        let ingress = engine.ingress();
        let keys: Arc<[u32]> = Arc::from((0..64u32).collect::<Vec<u32>>());
        for _ in 0..BATCHES {
            let mut batch = Arc::clone(&keys);
            while let Err(back) = ingress.try_submit_to(0, batch) {
                batch = back;
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        engine.shutdown(Duration::from_secs(30));
        let rings = rec.drain();
        assert_eq!(rings.iter().map(|r| r.overwritten).sum::<u64>(), 0);
        let starts = rings
            .iter()
            .flat_map(|r| r.events.iter())
            .filter(|ev| ev.event_kind() == Some(EventKind::LookupStart))
            .count() as u64;
        let sampled_out = rings.iter().map(|r| r.sampled_out).sum::<u64>();
        (starts, sampled_out)
    }

    let (full, full_out) = lookup_starts(1);
    assert_eq!((full, full_out), (BATCHES, 0));
    let (sampled, sampled_out) = lookup_starts(4);
    assert_eq!(
        (sampled, sampled_out),
        (BATCHES / 4, BATCHES - BATCHES / 4),
        "1-in-4 sampling must keep exactly every fourth batch"
    );
}
