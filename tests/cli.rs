//! End-to-end tests of the `poptrie-fib` command-line tool: build a FIB
//! from a text RIB, reload it, query it, and inspect it — the full user
//! workflow, through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_poptrie-fib"))
}

fn tmpdir(label: &str) -> PathBuf {
    // Keyed by test name, not just PID: the tests run as parallel threads
    // of one process and each deletes its directory when done.
    let dir = std::env::temp_dir().join(format!("poptrie-cli-test-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn build_lookup_stats_ranges_roundtrip() {
    let dir = tmpdir("roundtrip");
    let rib = dir.join("t1.rib");
    let fib = dir.join("t1.fib");
    std::fs::write(
        &rib,
        "# demo\n0.0.0.0/0 1\n10.0.0.0/8 2\n10.1.0.0/16 3\n192.0.2.0/24 4\n",
    )
    .unwrap();

    let out = bin()
        .args(["build", rib.to_str().unwrap(), "-o", fib.to_str().unwrap()])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compiled 4 routes"), "{stdout}");

    // Lookup against the compiled blob.
    let out = bin()
        .args([
            "lookup",
            fib.to_str().unwrap(),
            "10.1.2.3",
            "10.2.2.3",
            "8.8.8.8",
        ])
        .output()
        .expect("run lookup");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("10.1.2.3 -> next hop 3"), "{stdout}");
    assert!(stdout.contains("10.2.2.3 -> next hop 2"), "{stdout}");
    assert!(stdout.contains("8.8.8.8 -> next hop 1"), "{stdout}");

    // Lookup against the text RIB gives identical answers.
    let out = bin()
        .args(["lookup", rib.to_str().unwrap(), "10.1.2.3"])
        .output()
        .expect("run lookup on text");
    assert!(String::from_utf8_lossy(&out.stdout).contains("next hop 3"));

    // Stats and ranges.
    let out = bin()
        .args(["stats", fib.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("direct bits:   18"), "{stdout}");
    assert!(stdout.contains("effective ranges: 7"), "{stdout}");

    let out = bin()
        .args(["ranges", fib.to_str().unwrap(), "--limit", "3"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0.0.0.0 1"), "{stdout}");
    assert!(stdout.contains("10.0.0.0 2"), "{stdout}");
    assert!(stdout.contains("more"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_options_are_honored() {
    let dir = tmpdir("options");
    let rib = dir.join("t2.rib");
    let fib = dir.join("t2.fib");
    std::fs::write(&rib, "10.0.0.0/9 5\n10.128.0.0/9 5\n").unwrap();
    let out = bin()
        .args([
            "build",
            rib.to_str().unwrap(),
            "-o",
            fib.to_str().unwrap(),
            "--direct-bits",
            "16",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["stats", fib.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("direct bits:   16"), "{stdout}");
    // Aggregation merged the two /9s: two ranges (the /8 and the miss).
    assert!(
        stdout.contains("effective ranges: 3") || stdout.contains("effective ranges: 2"),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    // Unknown command.
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Bad RIB line.
    let dir = tmpdir("errors");
    let rib = dir.join("bad.rib");
    std::fs::write(&rib, "10.0.0.0/8 2\nnot-a-route\n").unwrap();
    let out = bin()
        .args([
            "build",
            rib.to_str().unwrap(),
            "-o",
            dir.join("x.fib").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));

    // Corrupt FIB blob.
    let blob = dir.join("corrupt.fib");
    std::fs::write(&blob, b"PTRIgarbage-that-is-not-a-fib").unwrap();
    let out = bin()
        .args(["stats", blob.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Unknown dataset name.
    let out = bin().args(["gen", "RV-bogus-p99"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_prints_usage() {
    let out = bin().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn mrt_extract_roundtrip() {
    // Synthesize a tiny MRT file (same byte layout the tablegen tests
    // use), extract a peer, and compile the result.
    let dir = tmpdir("mrt");
    let mrt_path = dir.join("mini.mrt");
    let mut bytes = Vec::new();
    let mut record = |subtype: u16, body: &[u8]| {
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&13u16.to_be_bytes());
        bytes.extend_from_slice(&subtype.to_be_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(body);
    };
    // PEER_INDEX_TABLE with one v4 peer.
    let mut body = Vec::new();
    body.extend_from_slice(&1u32.to_be_bytes());
    body.extend_from_slice(&0u16.to_be_bytes()); // empty view name
    body.extend_from_slice(&1u16.to_be_bytes());
    body.push(0x00);
    body.extend_from_slice(&7u32.to_be_bytes());
    body.extend_from_slice(&[192, 0, 2, 1]);
    body.extend_from_slice(&64500u16.to_be_bytes());
    record(1, &body);
    // One RIB_IPV4_UNICAST record: 10.0.0.0/8 via 192.0.2.9.
    let mut body = Vec::new();
    body.extend_from_slice(&0u32.to_be_bytes());
    body.push(8); // prefix length
    body.push(10); // one prefix byte
    body.extend_from_slice(&1u16.to_be_bytes()); // one entry
    body.extend_from_slice(&0u16.to_be_bytes()); // peer 0
    body.extend_from_slice(&0u32.to_be_bytes()); // originated
    let attrs: &[u8] = &[0x40, 3, 4, 192, 0, 2, 9]; // NEXT_HOP
    body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
    body.extend_from_slice(attrs);
    record(2, &body);
    std::fs::write(&mrt_path, &bytes).unwrap();

    // Listing mode (no --peer).
    let out = bin()
        .args(["mrt-extract", mrt_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Extraction mode.
    let rib = dir.join("p0.rib");
    let out = bin()
        .args([
            "mrt-extract",
            mrt_path.to_str().unwrap(),
            "--peer",
            "0",
            "-o",
            rib.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&rib).unwrap();
    assert_eq!(text.trim(), "10.0.0.0/8 1");
    std::fs::remove_dir_all(&dir).ok();
}
