//! # poptrie-suite
//!
//! Umbrella crate for the reproduction of *Poptrie: A Compressed Trie
//! with Population Count for Fast and Scalable Software IP Routing Table
//! Lookup* (Asai & Ohara, SIGCOMM 2015).
//!
//! This crate re-exports the whole workspace under one roof so examples,
//! integration tests and downstream users can depend on a single package:
//!
//! * [`poptrie`] — the paper's contribution: the Poptrie FIB
//!   ([`Poptrie`]), incremental updates ([`Fib`]), and the concurrent
//!   wrapper ([`poptrie::sync::SharedFib`]).
//! * [`rib`] — prefixes, the radix/Patricia RIBs and the [`Lpm`] trait.
//! * [`baselines`] — Tree BitMap, DXR and SAIL, the paper's competitors.
//! * [`tablegen`] — the Table 1 dataset synthesizer and RIB parser.
//! * [`bgp`] — RFC 4271 wire codecs and the passive-speaker session FSM.
//! * [`traffic`] — the §4.2 query patterns.
//! * [`cycles`] — TSC measurement and distribution statistics.
//!
//! ## Quick start
//!
//! ```
//! use poptrie_suite::prelude::*;
//!
//! let cfg = PoptrieConfig::new().direct_bits(18).build()?;
//! let mut fib: Fib<u32> = Fib::with_config(cfg);
//! fib.insert("192.0.2.0/24".parse()?, 1)?;
//! fib.insert("0.0.0.0/0".parse()?, 2)?;
//! assert_eq!(fib.lookup(0xC000_0263), Some(1)); // 192.0.2.99
//! assert_eq!(fib.lookup(0x0808_0808), Some(2)); // default route
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `cargo run --release -p
//! poptrie-bench --bin repro -- all` for the paper's full evaluation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// The core Poptrie crate (re-export of [`poptrie`]).
pub use poptrie;

/// RIB substrate (re-export of `poptrie-rib`).
pub use poptrie_rib as rib;

/// Bit-vector primitives (re-export of `poptrie-bitops`).
pub use poptrie_bitops as bitops;

/// Buddy allocator (re-export of `poptrie-buddy`).
pub use poptrie_buddy as buddy;

/// Dataset synthesis (re-export of `poptrie-tablegen`).
pub use poptrie_tablegen as tablegen;

/// Traffic patterns (re-export of `poptrie-traffic`).
pub use poptrie_traffic as traffic;

/// Measurement utilities (re-export of `poptrie-cycles`).
pub use poptrie_cycles as cycles;

/// Deterministic RNG (re-export of `poptrie-rng`).
pub use poptrie_rng as rng;

/// Sharded multi-core forwarding engine (re-export of `poptrie-engine`).
pub use poptrie_engine as engine;

/// Runtime telemetry primitives (re-export of `poptrie-telemetry`).
pub use poptrie_telemetry as telemetry;

/// BGP-4 wire codecs, session FSM and fault injection (re-export of
/// `poptrie-bgp`).
pub use poptrie_bgp as bgp;

/// Multi-tenant VRF multiplexing over shared leaf arenas (re-export of
/// `poptrie-vrf`).
pub use poptrie_vrf as vrf;

/// One-line import of the whole suite's vocabulary: the `poptrie`
/// prelude (config builder, fallible FIB mutations, shared FIB) plus the
/// forwarding-engine and VRF types.
pub mod prelude {
    pub use poptrie::prelude::*;
    pub use poptrie::{SourceId, VrfId};
    pub use poptrie_engine::{
        Control, Engine, EngineConfig, EngineReport, Ingress, LatencySummary, QosPolicy,
        SourceReport,
    };
    pub use poptrie_vrf::{InternStats, NextHopIntern, VrfMemory, VrfTable};
}

/// The baseline lookup algorithms the paper compares against.
pub mod baselines {
    pub use poptrie_dir248::{Dir248, Dir248Error};
    pub use poptrie_dxr::{Dxr, Dxr6, DxrConfig, DxrError};
    pub use poptrie_lulea::{Lulea, LuleaError};
    pub use poptrie_sail::{Sail, SailError, MAX_CHUNKS as SAIL_MAX_CHUNKS};
    pub use poptrie_treebitmap::{TreeBitmap, TreeBitmap4, TreeBitmap64};
}

// The types most users need, at the root.
pub use poptrie::{Builder, Fib, Poptrie, PoptrieBasic};
pub use poptrie_rib::{LinearLpm, Lpm, NextHop, Patricia, Prefix, RadixTree};
