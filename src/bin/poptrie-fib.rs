//! `poptrie-fib` — command-line FIB compiler and query tool.
//!
//! ```text
//! poptrie-fib build <rib.txt> -o <fib.bin> [--direct-bits N] [--no-aggregate]
//! poptrie-fib lookup <fib.bin | rib.txt> <addr>...
//! poptrie-fib stats <fib.bin | rib.txt>
//! poptrie-fib ranges <fib.bin | rib.txt> [--limit N]
//! poptrie-fib gen <dataset-name> [-o rib.txt]
//! poptrie-fib mrt-extract <dump.mrt> --peer <index> [-o rib.txt]
//! ```
//!
//! RIB text files use the `prefix next-hop-index` line format of
//! `poptrie_tablegen::parse_routes_v4`; compiled FIBs use the
//! `poptrie::serial` binary format (auto-detected by magic). MRT dumps
//! must be uncompressed TABLE_DUMP_V2 (`bzcat rib.bz2 > rib.mrt`).

use poptrie_suite::tablegen::{self, mrt};
use poptrie_suite::{Poptrie, RadixTree};
use std::net::Ipv4Addr;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("poptrie-fib: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
poptrie-fib — compile, query and inspect Poptrie FIBs

usage:
  poptrie-fib build <rib.txt> -o <fib.bin> [--direct-bits N] [--no-aggregate]
  poptrie-fib lookup <fib.bin | rib.txt> <addr>...
  poptrie-fib stats <fib.bin | rib.txt>
  poptrie-fib ranges <fib.bin | rib.txt> [--limit N]
  poptrie-fib gen <dataset-name> [-o rib.txt]
  poptrie-fib mrt-extract <dump.mrt> --peer <index> [-o rib.txt]

options:
  --telemetry   after the command, dump the process-wide lookup/update
                counters in Prometheus text format (requires a build with
                --features telemetry)
";

fn run(args: &[String]) -> Result<(), String> {
    let mut pos = Vec::new();
    let mut out_path: Option<String> = None;
    let mut direct_bits: u8 = 18;
    let mut aggregate = true;
    let mut telemetry = false;
    let mut peer: Option<u16> = None;
    let mut limit: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => {
                out_path = Some(it.next().ok_or("missing value after -o")?.clone());
            }
            "--direct-bits" | "-s" => {
                direct_bits = it
                    .next()
                    .ok_or("missing value after --direct-bits")?
                    .parse()
                    .map_err(|_| "invalid --direct-bits")?;
            }
            "--no-aggregate" => aggregate = false,
            "--telemetry" => telemetry = true,
            "--peer" => {
                peer = Some(
                    it.next()
                        .ok_or("missing value after --peer")?
                        .parse()
                        .map_err(|_| "invalid --peer")?,
                );
            }
            "--limit" => {
                limit = Some(
                    it.next()
                        .ok_or("missing value after --limit")?
                        .parse()
                        .map_err(|_| "invalid --limit")?,
                );
            }
            "-h" | "--help" | "help" => {
                print!("{USAGE}");
                return Ok(());
            }
            _ => pos.push(a.clone()),
        }
    }
    let Some(cmd) = pos.first() else {
        print!("{USAGE}");
        return Err("no command given".into());
    };
    let result = match cmd.as_str() {
        "build" => build(&pos[1..], out_path, direct_bits, aggregate),
        "lookup" => lookup(&pos[1..]),
        "stats" => stats(&pos[1..]),
        "ranges" => ranges(&pos[1..], limit),
        "gen" => gen(&pos[1..], out_path),
        "mrt-extract" => mrt_extract(&pos[1..], peer, out_path),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    if telemetry && result.is_ok() {
        dump_telemetry();
    }
    result
}

/// `--telemetry`: dump the process-wide counters the command just drove
/// (lookup totals, descent-depth histogram, update work) as Prometheus
/// text.
#[cfg(feature = "telemetry")]
fn dump_telemetry() {
    use poptrie_suite::poptrie::telemetry;
    println!("\n# --telemetry dump (process-wide counters)");
    print!("{}", telemetry::snapshot().render_prometheus());
}

/// Without the `telemetry` feature the counters are compiled out.
#[cfg(not(feature = "telemetry"))]
fn dump_telemetry() {
    eprintln!(
        "poptrie-fib: --telemetry requires a build with the counters compiled in:\n  \
         cargo run --release --features telemetry --bin poptrie-fib -- ..."
    );
}

/// Load a FIB from either a compiled blob or a text RIB.
fn load_fib(path: &str) -> Result<Poptrie<u32>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if bytes.starts_with(b"PTRI") {
        return Poptrie::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"));
    }
    let text = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8 text"))?;
    let routes = tablegen::parse_routes_v4(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(Poptrie::builder().build(&RadixTree::from_routes(routes)))
}

fn build(
    pos: &[String],
    out: Option<String>,
    direct_bits: u8,
    aggregate: bool,
) -> Result<(), String> {
    let [input] = pos else {
        return Err("build needs exactly one input RIB".into());
    };
    let out = out.ok_or("build needs -o <fib.bin>")?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let routes = tablegen::parse_routes_v4(&text).map_err(|e| format!("{input}: {e}"))?;
    let rib = RadixTree::from_routes(routes);
    let start = std::time::Instant::now();
    let fib: Poptrie<u32> = Poptrie::builder()
        .direct_bits(direct_bits)
        .aggregate(aggregate)
        .build(&rib);
    let dt = start.elapsed();
    let bytes = fib.to_bytes();
    std::fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    let st = fib.stats();
    println!(
        "compiled {} routes in {:.2} ms: {} inodes, {} leaves, {} bytes FIB ({} bytes on disk) -> {}",
        rib.len(),
        dt.as_secs_f64() * 1e3,
        st.inodes,
        st.leaves,
        st.memory_bytes,
        bytes.len(),
        out
    );
    Ok(())
}

fn lookup(pos: &[String]) -> Result<(), String> {
    let [input, addrs @ ..] = pos else {
        return Err("lookup needs an input and at least one address".into());
    };
    if addrs.is_empty() {
        return Err("lookup needs at least one address".into());
    }
    let fib = load_fib(input)?;
    for a in addrs {
        let ip: Ipv4Addr = a.parse().map_err(|_| format!("invalid address {a:?}"))?;
        match fib.lookup(u32::from(ip)) {
            Some(nh) => println!("{ip} -> next hop {nh}"),
            None => println!("{ip} -> no route"),
        }
    }
    Ok(())
}

fn stats(pos: &[String]) -> Result<(), String> {
    let [input] = pos else {
        return Err("stats needs exactly one input".into());
    };
    let fib = load_fib(input)?;
    let st = fib.stats();
    println!("direct bits:   {}", fib.direct_bits());
    println!("internal nodes: {}", st.inodes);
    println!("leaves:         {}", st.leaves);
    println!("direct slots:   {}", st.direct_slots);
    println!(
        "memory:         {} bytes ({:.2} MiB)",
        st.memory_bytes,
        st.memory_bytes as f64 / (1024.0 * 1024.0)
    );
    let ranges = fib.ranges();
    println!("effective ranges: {}", ranges.len());
    Ok(())
}

fn ranges(pos: &[String], limit: Option<usize>) -> Result<(), String> {
    let [input] = pos else {
        return Err("ranges needs exactly one input".into());
    };
    let fib = load_fib(input)?;
    let ranges = fib.ranges();
    let n = limit.unwrap_or(ranges.len());
    for &(start, nh) in ranges.iter().take(n) {
        if nh == 0 {
            println!("{} -", Ipv4Addr::from(start));
        } else {
            println!("{} {nh}", Ipv4Addr::from(start));
        }
    }
    if n < ranges.len() {
        println!("... {} more", ranges.len() - n);
    }
    Ok(())
}

fn gen(pos: &[String], out: Option<String>) -> Result<(), String> {
    let [name] = pos else {
        return Err(format!(
            "gen needs a dataset name; known: {}",
            tablegen::all_dataset_names().join(", ")
        ));
    };
    if !tablegen::all_dataset_names().contains(&name.as_str()) {
        return Err(format!(
            "unknown dataset {name:?}; known: {}",
            tablegen::all_dataset_names().join(", ")
        ));
    }
    eprintln!("synthesizing {name} ...");
    let d = tablegen::dataset(name);
    let text = tablegen::write_routes_v4(&d.routes);
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{name}: {} routes, {} next hops -> {path}",
                d.len(),
                d.next_hop_count()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn mrt_extract(pos: &[String], peer: Option<u16>, out: Option<String>) -> Result<(), String> {
    let [input] = pos else {
        return Err("mrt-extract needs exactly one MRT file".into());
    };
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let dump = mrt::parse_table_dump_v2(&bytes).map_err(|e| e.to_string())?;
    let Some(peer) = peer else {
        // No peer given: list the full-feed candidates like Table 1 did.
        println!("peers with >= 400K IPv4 routes (use --peer <index>):");
        for idx in dump.full_feed_peers(400_000) {
            let p = &dump.peers[idx as usize];
            println!("  p{idx}: AS{} {}", p.asn, p.address);
        }
        return Ok(());
    };
    let view = dump
        .peer_view(peer)
        .ok_or_else(|| format!("no peer with index {peer}"))?;
    let text = tablegen::write_routes_v4(&view.routes_v4);
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "peer p{peer} (AS{} {}): {} routes, {} next hops -> {path}",
                view.peer.asn,
                view.peer.address,
                view.routes_v4.len(),
                view.next_hops.len() - 1
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}
